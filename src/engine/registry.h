#ifndef TCM_ENGINE_REGISTRY_H_
#define TCM_ENGINE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "data/dataset.h"
#include "distance/emd.h"
#include "distance/qi_space.h"
#include "microagg/partition.h"
#include "tclose/anonymizer.h"

namespace tcm {

// Parameters handed to every registered algorithm. `seed` is forwarded so
// stochastic algorithms stay reproducible (the engine derives one seed per
// shard from it); the current built-ins are fully deterministic and ignore
// it.
struct AlgorithmParams {
  size_t k = 2;
  double t = 0.25;
  uint64_t seed = 1;
  QiNormalization normalization = QiNormalization::kRange;
};

// A registered algorithm: partitions `data` (whose schema declares the
// quasi-identifier and confidential roles) into clusters of >= k records.
// Every algorithm in this library reduces to a Partition; aggregation and
// measurement are shared downstream (see RunAlgorithm).
using PartitionFn =
    std::function<Result<Partition>(const Dataset& data,
                                    const AlgorithmParams& params)>;

// Name -> factory map over the anonymization algorithms, replacing the
// hard-coded enum dispatch the tools used to carry. Thread-safe: the
// engine consults it from pool workers.
class AlgorithmRegistry {
 public:
  AlgorithmRegistry() = default;

  // InvalidArgument on an empty name, FailedPrecondition when the name is
  // already taken.
  Status Register(const std::string& name, const std::string& description,
                  PartitionFn fn) TCM_EXCLUDES(mutex_);

  // NotFound lists the registered names so CLI users see their options.
  Result<PartitionFn> Find(const std::string& name) const
      TCM_EXCLUDES(mutex_);

  bool Contains(const std::string& name) const TCM_EXCLUDES(mutex_);

  // Registered names in sorted order.
  std::vector<std::string> Names() const TCM_EXCLUDES(mutex_);

  // One-line description of a registered algorithm ("" when unknown).
  std::string Description(const std::string& name) const
      TCM_EXCLUDES(mutex_);

  // The process-wide registry, pre-populated with the built-in algorithms:
  //   merge, merge_vmdav, merge_projection, merge_chunked,
  //   kanon_first (alias: kanon), tclose_first (alias: tclose),
  //   mondrian, sabre
  static AlgorithmRegistry& BuiltIns();

 private:
  struct Entry {
    std::string description;
    PartitionFn fn;
  };

  // nullptr when `name` is unknown; the pointer is only valid while the
  // lock stays held (entries_ may be rehashed by a concurrent Register).
  const Entry* FindEntryLocked(const std::string& name) const
      TCM_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::string, Entry> entries_ TCM_GUARDED_BY(mutex_);
};

// Registers the built-in algorithms into `registry`. Idempotent on
// BuiltIns() (which calls this once); on a fresh registry it registers
// each name exactly once.
void RegisterBuiltinAlgorithms(AlgorithmRegistry* registry);

// Shared input validation of the registry-driven drivers: records >= 2,
// QI and confidential roles present, k in [1, n], t >= 0.
Status ValidateAlgorithmInputs(const Dataset& data,
                               const AlgorithmParams& params);

// Aggregates `partition` over `data` and fills in the shared measurements
// (cluster sizes, max cluster EMD against the data set's confidential
// distribution, normalized SSE). `elapsed_seconds` is recorded verbatim.
// `emd` lets callers that already built the rank structure reuse it; when
// null it is built here.
Result<AnonymizationResult> MeasurePartition(const Dataset& data,
                                             Partition partition,
                                             double elapsed_seconds,
                                             const EmdCalculator* emd =
                                                 nullptr);

// Looks `name` up in BuiltIns() (or `registry` when given), validates the
// dataset like Anonymize() does, runs the algorithm and measures the
// release. The registry-driven counterpart of the enum-based Anonymize().
Result<AnonymizationResult> RunAlgorithm(
    const Dataset& data, const std::string& name,
    const AlgorithmParams& params,
    const AlgorithmRegistry* registry = nullptr);

}  // namespace tcm

#endif  // TCM_ENGINE_REGISTRY_H_
