#ifndef TCM_ENGINE_BATCH_H_
#define TCM_ENGINE_BATCH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "engine/registry.h"
#include "engine/thread_pool.h"

namespace tcm {

// One cell of a parameter sweep: dataset x algorithm x k x t. `data` is
// non-owning; the caller keeps the datasets alive across RunBatch (jobs
// typically share a handful of datasets, so the batch holds pointers
// rather than copies).
struct BatchJob {
  std::string label;           // e.g. "mcd/merge/k=5/t=0.10"
  const Dataset* data = nullptr;
  std::string algorithm = "tclose_first";
  AlgorithmParams params;
};

// Outcome of one job: its status plus the summary measurements (the
// released dataset itself is dropped to keep sweep memory bounded).
struct BatchOutcome {
  std::string label;
  Status status;
  size_t clusters = 0;
  size_t min_cluster_size = 0;
  size_t max_cluster_size = 0;
  double max_cluster_emd = 0.0;
  double normalized_sse = 0.0;
  double elapsed_seconds = 0.0;
};

// Fans the jobs across `pool` (serially when pool is null) and returns
// one outcome per job, in job order regardless of completion order. A
// failed job records its error without affecting the others.
std::vector<BatchOutcome> RunBatch(const std::vector<BatchJob>& jobs,
                                   ThreadPool* pool);

}  // namespace tcm

#endif  // TCM_ENGINE_BATCH_H_
