#ifndef TCM_ENGINE_THREAD_POOL_H_
#define TCM_ENGINE_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tcm {

// Fixed-size worker pool with a FIFO task queue. Submit() hands back a
// std::future for the task's return value; WaitAll() blocks until every
// submitted task has finished. The pool is the execution substrate of the
// engine (sharded pipeline runner, batch mode) but is generic: tasks are
// arbitrary callables.
//
// Scheduling is non-deterministic across threads by nature; engine callers
// obtain deterministic RESULTS by collecting futures in submission order
// and keeping per-task work independent of scheduling (see sharded.h).
//
// Lock discipline (compile-time checked under the `clang-analysis`
// preset): every piece of shared state is guarded by `mutex_`; public
// entry points take the lock themselves and are annotated
// TCM_EXCLUDES(mutex_).
class ThreadPool {
 public:
  // Spawns `num_threads` workers; 0 means one per hardware thread (at
  // least one). A single-threaded pool executes tasks strictly in FIFO
  // order on its one worker.
  explicit ThreadPool(size_t num_threads = 0);

  // Calls Shutdown(): outstanding tasks are finished, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  // Enqueues `fn` and returns a future for its result. `fn` must be
  // invocable with no arguments; exceptions propagate through the future.
  // After Shutdown() the task is rejected: it never runs and the returned
  // future reports std::future_error(broken_promise) from get().
  template <typename F>
  auto Submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // packaged_task is move-only; the shared_ptr makes the wrapper
    // copyable so it fits in std::function.
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    // On rejection both references to the packaged_task are dropped
    // without invoking it, which breaks its promise — the documented
    // submit-after-shutdown signal.
    Enqueue([task]() { (*task)(); });
    return future;
  }

  // Blocks until the queue is empty and no worker is running a task.
  // Tasks submitted while waiting are waited for too.
  void WaitAll() TCM_EXCLUDES(mutex_);

  // Caller-assist: pops one queued task (if any) and runs it on the
  // calling thread, returning true; returns false without blocking when
  // the queue is empty. Lets a caller that is itself waiting on futures
  // from this pool lend its thread instead of idling — a single-threaded
  // pool plus an assisting caller makes progress on two tasks at once,
  // and a fan-out can never deadlock behind its own waiter. Tasks must
  // not assume which thread runs them (they already cannot, per Submit).
  bool TryRunOneTask() TCM_EXCLUDES(mutex_);

  // Graceful stop, the pool's cancellation boundary: rejects every task
  // submitted from this point on, finishes the queued and running ones,
  // and joins the workers. Idempotent; safe to call concurrently with
  // Submit AND with other Shutdown calls (each worker is joined by
  // exactly one caller; late callers return once the first join sweep
  // has claimed the threads).
  void Shutdown() TCM_EXCLUDES(mutex_);

 private:
  // Returns false (dropping the task) once Shutdown has begun.
  bool Enqueue(std::function<void()> task) TCM_EXCLUDES(mutex_);
  void WorkerLoop() TCM_EXCLUDES(mutex_);

  size_t num_threads_ = 0;

  Mutex mutex_;
  CondVar task_available_;
  CondVar all_done_;
  // Workers are spawned under the lock in the constructor and claimed
  // (moved out for joining) under the lock in Shutdown, so concurrent
  // Shutdown calls cannot join the same std::thread twice.
  std::vector<std::thread> workers_ TCM_GUARDED_BY(mutex_);
  std::deque<std::function<void()>> queue_ TCM_GUARDED_BY(mutex_);
  size_t in_flight_ TCM_GUARDED_BY(mutex_) = 0;  // queued + executing
  bool stopping_ TCM_GUARDED_BY(mutex_) = false;
};

}  // namespace tcm

#endif  // TCM_ENGINE_THREAD_POOL_H_
