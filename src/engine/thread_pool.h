#ifndef TCM_ENGINE_THREAD_POOL_H_
#define TCM_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tcm {

// Fixed-size worker pool with a FIFO task queue. Submit() hands back a
// std::future for the task's return value; WaitAll() blocks until every
// submitted task has finished. The pool is the execution substrate of the
// engine (sharded pipeline runner, batch mode) but is generic: tasks are
// arbitrary callables.
//
// Scheduling is non-deterministic across threads by nature; engine callers
// obtain deterministic RESULTS by collecting futures in submission order
// and keeping per-task work independent of scheduling (see sharded.h).
class ThreadPool {
 public:
  // Spawns `num_threads` workers; 0 means one per hardware thread (at
  // least one). A single-threaded pool executes tasks strictly in FIFO
  // order on its one worker.
  explicit ThreadPool(size_t num_threads = 0);

  // Calls Shutdown(): outstanding tasks are finished, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  // Enqueues `fn` and returns a future for its result. `fn` must be
  // invocable with no arguments; exceptions propagate through the future.
  // After Shutdown() the task is rejected: it never runs and the returned
  // future reports std::future_error(broken_promise) from get().
  template <typename F>
  auto Submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // packaged_task is move-only; the shared_ptr makes the wrapper
    // copyable so it fits in std::function.
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    // On rejection both references to the packaged_task are dropped
    // without invoking it, which breaks its promise — the documented
    // submit-after-shutdown signal.
    Enqueue([task]() { (*task)(); });
    return future;
  }

  // Blocks until the queue is empty and no worker is running a task.
  // Tasks submitted while waiting are waited for too.
  void WaitAll();

  // Graceful stop, the pool's cancellation boundary: rejects every task
  // submitted from this point on, finishes the queued and running ones,
  // and joins the workers. Idempotent; safe to call concurrently with
  // Submit from other threads (their tasks either run to completion or
  // are rejected, never lost silently).
  void Shutdown();

 private:
  // Returns false (dropping the task) once Shutdown has begun.
  bool Enqueue(std::function<void()> task);
  void WorkerLoop();

  size_t num_threads_ = 0;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
};

}  // namespace tcm

#endif  // TCM_ENGINE_THREAD_POOL_H_
