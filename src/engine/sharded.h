#ifndef TCM_ENGINE_SHARDED_H_
#define TCM_ENGINE_SHARDED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "engine/registry.h"
#include "engine/thread_pool.h"
#include "tclose/anonymizer.h"
#include "tclose/merge.h"

namespace tcm {

// A deterministic assignment of the rows 0..n-1 to shards. Row i goes to
// shard i % num_shards (round-robin), so every shard is a systematic
// sample of the data set and its confidential distribution tracks the
// global one — which keeps per-shard t-closeness meaningful globally.
// The plan is a pure function of (n, shard_size, k): thread count never
// changes which rows share a shard.
struct ShardPlan {
  std::vector<std::vector<size_t>> shards;  // global row ids, ascending

  size_t NumShards() const { return shards.size(); }
};

// Builds the plan. `shard_size` is the target rows per shard; 0 (or a
// value > n) yields a single shard. The shard count is num_records /
// shard_size rounded to nearest (so 8191 rows at shard_size 4096 run as
// two ~4096-row shards, not one oversized 8191-row shard), and is
// clamped so every shard keeps at least max(3k, 2) rows, the floor the
// clustering heuristics need to work with.
ShardPlan MakeShardPlan(size_t num_records, size_t shard_size, size_t k);

struct ShardedAnonymizeOptions {
  std::string algorithm = "tclose_first";  // registry name
  AlgorithmParams params;
  // Target records per shard; 0 disables sharding (one shard).
  size_t shard_size = 4096;
  // After concatenating the per-shard partitions, merge clusters whose
  // EMD against the GLOBAL confidential distribution exceeds t (per-shard
  // runs only see their shard's distribution, so a small residual can
  // remain). The pass is deterministic; it only ever grows clusters, so
  // k-anonymity is preserved.
  bool final_merge = true;
  // Engine for the final_merge pass. kSequential is the byte-stable
  // legacy loop; kHierarchical repairs deterministic subtrees in
  // parallel on the caller's pool (with emd_bounds pruning enabled) and
  // finishes with a sequential global tail — reproducible at any thread
  // count, but with legitimately different (still k-anonymous + t-close)
  // release bytes than kSequential.
  MergeStrategy merge_strategy = MergeStrategy::kSequential;
};

struct ShardedAnonymizeStats {
  size_t num_shards = 1;
  size_t final_merges = 0;        // cluster mergers in the global pass
  double max_shard_seconds = 0.0; // slowest shard (parallel critical path)
  // Per-stage wall clock inside this call (single-shard runs report the
  // whole algorithm under anonymize_seconds and zero elsewhere).
  double shard_seconds = 0.0;     // shard plan + per-shard materialization
  double anonymize_seconds = 0.0; // per-shard fan-out, submission to join
  double merge_seconds = 0.0;     // global MergeUntilTClose repair pass
  double measure_seconds = 0.0;   // aggregation + utility measurement
  // Final-merge engine detail (see MergeStats): subtree fan-out and the
  // bound-pruning ledger (candidate == pruned + exact).
  size_t merge_subtrees = 0;
  size_t subtree_merges = 0;
  size_t tail_merges = 0;
  size_t candidate_checks = 0;
  size_t pruned_checks = 0;
  size_t exact_checks = 0;
};

// Anonymizes `data` shard-by-shard on `pool` (serially when pool is null
// or has one thread — the result is identical either way):
//   1. shard rows via MakeShardPlan,
//   2. run the registry algorithm on every shard concurrently, with a
//      per-shard seed derived from params.seed and the shard index,
//   3. concatenate the per-shard clusters in shard order (deterministic),
//   4. optionally merge until the global t-closeness bound holds,
//   5. aggregate and measure the release.
// Futures are collected in submission order, every per-shard computation
// depends only on its shard's rows, and the merge pass is sequential — so
// the release is byte-identical for any thread count.
Result<AnonymizationResult> ShardedAnonymize(
    const Dataset& data, const ShardedAnonymizeOptions& options,
    ThreadPool* pool, ShardedAnonymizeStats* stats = nullptr);

}  // namespace tcm

#endif  // TCM_ENGINE_SHARDED_H_
