#include "engine/sharded.h"

#include <algorithm>
#include <future>
#include <optional>
#include <utility>

#include "common/timer.h"
#include "distance/emd.h"
#include "distance/qi_space.h"
#include "obs/trace.h"
#include "tclose/merge.h"

namespace tcm {

ShardPlan MakeShardPlan(size_t num_records, size_t shard_size, size_t k) {
  ShardPlan plan;
  size_t num_shards = 1;
  if (shard_size > 0 && shard_size < num_records) {
    // Round to nearest: truncation made e.g. 8191 rows at shard_size
    // 4096 run as ONE 8191-row shard (~2x the requested size); rounding
    // splits it into two ~4096-row shards as asked.
    num_shards = std::max<size_t>(
        1, (num_records + shard_size / 2) / shard_size);
    // Keep every shard workable: at least max(3k, 2) rows each.
    size_t min_rows = std::max<size_t>(3 * k, 2);
    if (min_rows > 0) {
      num_shards = std::min(num_shards, std::max<size_t>(
                                            1, num_records / min_rows));
    }
  }
  plan.shards.assign(num_shards, {});
  for (size_t s = 0; s < num_shards; ++s) {
    plan.shards[s].reserve(num_records / num_shards + 1);
  }
  for (size_t row = 0; row < num_records; ++row) {
    plan.shards[row % num_shards].push_back(row);
  }
  return plan;
}

namespace {

// Per-shard unit of work: everything it reads is owned by the shard, so
// tasks share nothing mutable and scheduling cannot affect results.
struct ShardOutcome {
  Status status;
  Partition partition;  // row ids local to the shard dataset
  double seconds = 0.0;
};

ShardOutcome RunShard(const Dataset& shard_data, const std::string& algorithm,
                      const AlgorithmParams& params) {
  ShardOutcome outcome;
  TraceSpan span("shard_anonymize");
  WallTimer timer;
  auto fn = AlgorithmRegistry::BuiltIns().Find(algorithm);
  if (!fn.ok()) {
    outcome.status = fn.status();
    return outcome;
  }
  auto partition = (*fn)(shard_data, params);
  outcome.seconds = timer.ElapsedSeconds();
  if (!partition.ok()) {
    outcome.status = partition.status();
    return outcome;
  }
  outcome.partition = std::move(partition).value();
  return outcome;
}

}  // namespace

Result<AnonymizationResult> ShardedAnonymize(
    const Dataset& data, const ShardedAnonymizeOptions& options,
    ThreadPool* pool, ShardedAnonymizeStats* stats) {
  const AlgorithmParams& params = options.params;
  if (!AlgorithmRegistry::BuiltIns().Contains(options.algorithm)) {
    // Surface the name-with-suggestions error before any work.
    return AlgorithmRegistry::BuiltIns().Find(options.algorithm).status();
  }
  TCM_RETURN_IF_ERROR(ValidateAlgorithmInputs(data, params));

  WallTimer timer;
  WallTimer stage_timer;
  ShardPlan plan = MakeShardPlan(data.NumRecords(), options.shard_size,
                                 params.k);
  if (stats != nullptr) *stats = ShardedAnonymizeStats{};
  if (stats != nullptr) stats->num_shards = plan.NumShards();

  if (plan.NumShards() == 1) {
    TraceSpan span("anonymize");
    auto result = RunAlgorithm(data, options.algorithm, params);
    if (stats != nullptr) {
      stats->anonymize_seconds = stage_timer.ElapsedSeconds();
    }
    return result;
  }

  // Materialize the shard datasets up front (serial, cheap row copies);
  // worker tasks then touch only their own shard.
  std::vector<Dataset> shard_data;
  {
    TraceSpan span("shard");
    shard_data.reserve(plan.NumShards());
    for (const std::vector<size_t>& rows : plan.shards) {
      TCM_ASSIGN_OR_RETURN(Dataset shard, data.Select(rows));
      shard_data.push_back(std::move(shard));
    }
  }
  if (stats != nullptr) stats->shard_seconds = stage_timer.ElapsedSeconds();

  // Fan the shards across the pool; collect in shard order so the merged
  // partition never depends on completion order.
  stage_timer.Restart();
  std::vector<ShardOutcome> outcomes(plan.NumShards());
  {
    TraceSpan span("anonymize");
    std::vector<std::future<ShardOutcome>> futures;
    for (size_t s = 0; s < plan.NumShards(); ++s) {
      AlgorithmParams shard_params = params;
      shard_params.seed = params.seed + 0x9E3779B97F4A7C15ULL * (s + 1);
      const Dataset& shard = shard_data[s];
      auto task = [&shard, algorithm = options.algorithm, shard_params]() {
        return RunShard(shard, algorithm, shard_params);
      };
      if (pool != nullptr) {
        futures.push_back(pool->Submit(std::move(task)));
      } else {
        outcomes[s] = task();
      }
    }
    for (size_t s = 0; s < futures.size(); ++s) {
      outcomes[s] = futures[s].get();
    }
  }
  if (stats != nullptr) {
    stats->anonymize_seconds = stage_timer.ElapsedSeconds();
  }

  Partition merged;
  for (size_t s = 0; s < plan.NumShards(); ++s) {
    ShardOutcome& outcome = outcomes[s];
    if (!outcome.status.ok()) {
      return Status(outcome.status.code(),
                    "shard " + std::to_string(s) + ": " +
                        outcome.status.message());
    }
    if (stats != nullptr) {
      stats->max_shard_seconds =
          std::max(stats->max_shard_seconds, outcome.seconds);
    }
    // Translate shard-local row ids back to global ones.
    const std::vector<size_t>& rows = plan.shards[s];
    for (Cluster& cluster : outcome.partition.clusters) {
      for (size_t& row : cluster) row = rows[row];
      merged.clusters.push_back(std::move(cluster));
    }
  }
  TCM_RETURN_IF_ERROR(
      ValidatePartition(merged, data.NumRecords(), params.k));

  // Per-shard runs steer by their shard's confidential distribution; the
  // round-robin plan keeps those close to the global one, and this pass
  // deterministically repairs whatever residual violations remain.
  size_t final_merges = 0;
  std::optional<EmdCalculator> global_emd;
  if (options.final_merge) {
    TraceSpan span("merge");
    stage_timer.Restart();
    QiSpace space(data, params.normalization);
    global_emd.emplace(data, 0);
    MergeOptions merge_options;
    merge_options.strategy = options.merge_strategy;
    merge_options.pool = pool;
    // The hierarchical engine's bytes differ from the sequential pin
    // anyway, so it also takes the bound-pruning fast path.
    merge_options.prune =
        options.merge_strategy == MergeStrategy::kHierarchical;
    MergeStats merge_stats;
    TCM_ASSIGN_OR_RETURN(
        merged,
        MergeUntilTCloseWith(space, {&*global_emd}, params.t,
                             std::move(merged), merge_options,
                             &merge_stats));
    final_merges = merge_stats.merges;
    if (stats != nullptr) {
      stats->final_merges = final_merges;
      stats->merge_seconds = stage_timer.ElapsedSeconds();
      stats->merge_subtrees = merge_stats.num_subtrees;
      stats->subtree_merges = merge_stats.subtree_merges;
      stats->tail_merges = merge_stats.tail_merges;
      stats->candidate_checks = merge_stats.candidate_checks;
      stats->pruned_checks = merge_stats.pruned_checks;
      stats->exact_checks = merge_stats.exact_checks;
    }
  }

  TraceSpan measure_span("metrics");
  stage_timer.Restart();
  TCM_ASSIGN_OR_RETURN(
      AnonymizationResult result,
      MeasurePartition(data, std::move(merged), timer.ElapsedSeconds(),
                       global_emd ? &*global_emd : nullptr));
  if (stats != nullptr) stats->measure_seconds = stage_timer.ElapsedSeconds();
  result.elapsed_seconds = timer.ElapsedSeconds();
  result.merges = final_merges;
  return result;
}

}  // namespace tcm
