#include "engine/streaming.h"

#include <algorithm>
#include <future>
#include <memory>
#include <utility>

#include "common/timer.h"
#include "data/csv_stream.h"
#include "engine/pipeline.h"
#include "engine/registry.h"
#include "engine/sharded.h"
#include "obs/trace.h"

namespace tcm {
namespace {

// Seed stride between windows; deliberately different from the per-shard
// stride inside ShardedAnonymize. Window 0 adds nothing, so a run whose
// stream fits in one window uses spec.seed exactly — the byte-identity
// anchor against the in-memory PipelineRunner.
constexpr uint64_t kWindowSeedStride = 0xC2B2AE3D27D4EB4FULL;

}  // namespace

Result<StreamingReport> StreamingPipelineRunner::Run(
    RecordSource* source, const StreamingSpec& spec, const WindowSink& sink) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must not be null");
  }
  // Fail on a bad algorithm name before consuming the (single-pass)
  // stream.
  if (!AlgorithmRegistry::BuiltIns().Contains(spec.algorithm)) {
    return AlgorithmRegistry::BuiltIns().Find(spec.algorithm).status();
  }
  const size_t read_ahead = spec.k;
  const size_t min_window = std::max<size_t>(spec.k, 2);
  // With overlap_io two windows are resident at once (the one being
  // processed and the one being prefetched), so each gets half the
  // budget left after the read-ahead.
  const size_t budget_floor =
      read_ahead + (spec.overlap_io ? 2 * min_window : min_window);
  if (spec.max_resident_rows < budget_floor) {
    return Status::InvalidArgument(
        "max_resident_rows (" + std::to_string(spec.max_resident_rows) +
        ") too small: need at least k + " +
        (spec.overlap_io ? std::string("2 * ") : std::string("")) +
        "max(k, 2) = " + std::to_string(budget_floor) + " rows for k = " +
        std::to_string(spec.k));
  }
  const Schema& schema = source->schema();
  if (schema.QuasiIdentifierIndices().empty()) {
    return Status::InvalidArgument("source schema has no quasi-identifiers");
  }
  if (schema.ConfidentialIndices().empty()) {
    return Status::InvalidArgument(
        "source schema has no confidential attribute");
  }

  const size_t window_target =
      spec.overlap_io ? (spec.max_resident_rows - read_ahead) / 2
                      : spec.max_resident_rows - read_ahead;
  StreamingReport report;
  report.threads = pool_.num_threads();
  report.k_verified = spec.verify;  // stays true until a window fails
  report.t_verified = spec.verify;

  ShardedAnonymizeOptions options;
  options.algorithm = spec.algorithm;
  options.params.k = spec.k;
  options.params.t = spec.t;
  options.shard_size = spec.shard_size;
  options.merge_strategy = spec.merge_strategy;

  std::unique_ptr<StreamingCsvWriter> writer;
  // Reader state. Exactly one read_window call runs at a time — inline
  // in the sequential executor, or as the single outstanding prefetch
  // task in the overlapped one — so carry/exhausted need no lock: the
  // future's get() orders each prefetch before the next use.
  Dataset carry(schema);
  bool exhausted = false;

  // Assembles the next window: carried read-ahead rows first, then fill
  // from the stream, then read k rows ahead to learn whether this is the
  // final window.
  struct WindowRead {
    Status status = Status::Ok();
    Dataset window;
    bool final_window = false;
    size_t resident = 0;  // window + carry + still-processing rows
    double seconds = 0.0;
  };
  auto read_window = [&schema, &carry, &exhausted, source, window_target,
                      read_ahead](size_t processing_rows) {
    TraceSpan span("read");
    WallTimer read_timer;
    WindowRead read;
    read.window = Dataset(schema);
    auto fill = [&]() -> Status {
      for (size_t row = 0; row < carry.NumRecords(); ++row) {
        TCM_RETURN_IF_ERROR(read.window.Append(carry.record(row)));
      }
      carry = Dataset(schema);
      if (read.window.NumRecords() < window_target) {
        TCM_RETURN_IF_ERROR(
            source
                ->ReadInto(&read.window,
                           window_target - read.window.NumRecords())
                .status());
      }
      TCM_ASSIGN_OR_RETURN(size_t ahead,
                           source->ReadInto(&carry, read_ahead));
      if (ahead < read_ahead) {
        // Stream exhausted inside the read-ahead: its rows are too few
        // to anonymize alone, so they join this (final) window.
        for (size_t row = 0; row < carry.NumRecords(); ++row) {
          TCM_RETURN_IF_ERROR(read.window.Append(carry.record(row)));
        }
        carry = Dataset(schema);
        exhausted = true;
      }
      return Status::Ok();
    };
    read.status = fill();
    read.final_window = exhausted;
    read.resident = processing_rows + read.window.NumRecords() +
                    carry.NumRecords();
    read.seconds = read_timer.ElapsedSeconds();
    return read;
  };

  WallTimer total;
  WallTimer timer;
  WindowRead current = read_window(0);
  for (;;) {
    TCM_RETURN_IF_ERROR(current.status);
    report.read_seconds += current.seconds;
    report.peak_resident_rows =
        std::max(report.peak_resident_rows, current.resident);
    if (current.window.empty()) break;
    TraceSpan window_span("window");
    Dataset window = std::move(current.window);

    // Overlap: kick off the next window's read/parse before this
    // window's anonymize/verify/write. The prefetch task exclusively
    // owns the reader state until its future is collected below.
    std::future<WindowRead> prefetch;
    const bool overlapped = spec.overlap_io && !current.final_window;
    const bool was_final = current.final_window;
    if (overlapped) {
      const size_t processing_rows = window.NumRecords();
      prefetch = pool_.Submit([&read_window, processing_rows]() {
        return read_window(processing_rows);
      });
      ++report.overlapped_reads;
    }

    // Anonymize: the same shard fan-out the in-memory runner uses.
    const size_t w = report.num_windows;
    ShardedAnonymizeOptions window_options = options;
    window_options.params.seed = spec.seed + kWindowSeedStride * w;
    ShardedAnonymizeStats stats;
    timer.Restart();
    auto result = ShardedAnonymize(window, window_options, &pool_, &stats);
    if (!result.ok()) {
      return Status(result.status().code(),
                    "window " + std::to_string(w) + ": " +
                        result.status().message());
    }
    double anonymize_seconds = timer.ElapsedSeconds();
    report.anonymize_seconds += anonymize_seconds;
    report.shard_seconds += stats.shard_seconds;
    report.shard_anonymize_seconds += stats.anonymize_seconds;
    report.merge_seconds += stats.merge_seconds;
    report.metrics_seconds += stats.measure_seconds;
    report.merge_subtrees += stats.merge_subtrees;
    report.subtree_merges += stats.subtree_merges;
    report.tail_merges += stats.tail_merges;
    report.candidate_checks += stats.candidate_checks;
    report.pruned_checks += stats.pruned_checks;
    report.exact_checks += stats.exact_checks;

    StreamingWindowSummary summary;
    summary.rows = window.NumRecords();
    summary.clusters = result->partition.NumClusters();
    summary.num_shards = stats.num_shards;
    summary.shard_size = spec.shard_size;
    summary.threads = pool_.num_threads();
    summary.final_merges = stats.final_merges;
    summary.min_cluster_size = result->min_cluster_size;
    summary.max_cluster_size = result->max_cluster_size;
    summary.max_cluster_emd = result->max_cluster_emd;
    summary.normalized_sse = result->normalized_sse;
    summary.anonymize_seconds = anonymize_seconds;

    // Verify: independent re-check of both guarantees per window.
    if (spec.verify) {
      TraceSpan span("verify");
      timer.Restart();
      TCM_ASSIGN_OR_RETURN(
          ReleaseVerification verification,
          CheckRelease(result->anonymized, spec.k, spec.t));
      report.verify_seconds += timer.ElapsedSeconds();
      report.k_verified = report.k_verified && verification.k_anonymous;
      report.t_verified = report.t_verified && verification.t_close;
      if (!verification.ok()) {
        return PrivacyViolationError(verification,
                                     "window " + std::to_string(w) + ": ");
      }
    }

    // Write: header once, then each window's release rows.
    if (!spec.output_path.empty()) {
      TraceSpan span("write");
      timer.Restart();
      if (writer == nullptr) {
        TCM_ASSIGN_OR_RETURN(
            writer, StreamingCsvWriter::Open(spec.output_path, schema));
      }
      TCM_RETURN_IF_ERROR(writer->WriteRows(result->anonymized));
      report.write_seconds += timer.ElapsedSeconds();
    }
    if (sink) {
      TCM_RETURN_IF_ERROR(sink(result->anonymized, summary));
    }

    // Aggregate metrics (normalized SSE as a row-weighted mean).
    report.total_rows += summary.rows;
    report.num_shards += summary.num_shards;
    report.final_merges += summary.final_merges;
    report.min_cluster_size =
        report.num_windows == 0
            ? summary.min_cluster_size
            : std::min(report.min_cluster_size, summary.min_cluster_size);
    report.max_cluster_size =
        std::max(report.max_cluster_size, summary.max_cluster_size);
    report.max_cluster_emd =
        std::max(report.max_cluster_emd, summary.max_cluster_emd);
    report.normalized_sse += summary.normalized_sse *
                             static_cast<double>(summary.rows);
    report.windows.push_back(summary);
    ++report.num_windows;

    if (overlapped) {
      current = prefetch.get();
    } else if (!was_final) {
      current = read_window(0);
    } else {
      break;
    }
  }

  if (report.num_windows == 0) {
    return Status::InvalidArgument("stream produced no records");
  }
  report.normalized_sse /= static_cast<double>(report.total_rows);
  if (writer != nullptr) {
    timer.Restart();
    TCM_RETURN_IF_ERROR(writer->Close());
    report.write_seconds += timer.ElapsedSeconds();
  }
  report.total_seconds = total.ElapsedSeconds();
  return report;
}

}  // namespace tcm
