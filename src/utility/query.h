#ifndef TCM_UTILITY_QUERY_H_
#define TCM_UTILITY_QUERY_H_

#include <cstdint>

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

// Workload-based utility: random range (subdomain) COUNT queries over the
// quasi-identifiers, evaluated on the original and the anonymized data.
// The paper motivates SSE by noting that high information loss damages
// "subdomain analyses (analyses restricted to parts of the data set)";
// this harness measures that damage directly.

struct RangeQueryOptions {
  size_t num_queries = 200;
  // Each query selects, per QI attribute, a random interval covering this
  // fraction of the attribute's range.
  double selectivity = 0.3;
  uint64_t seed = 1;
};

struct RangeQueryAccuracy {
  double mean_absolute_error = 0.0;   // |count - count'| averaged
  double mean_relative_error = 0.0;   // |count - count'| / max(count, 1)
  double max_absolute_error = 0.0;
  size_t num_queries = 0;
};

// InvalidArgument if shapes differ, there are no QIs, or the options are
// out of range (selectivity must be in (0, 1]).
Result<RangeQueryAccuracy> EvaluateRangeQueries(
    const Dataset& original, const Dataset& anonymized,
    const RangeQueryOptions& options = {});

}  // namespace tcm

#endif  // TCM_UTILITY_QUERY_H_
