#include "utility/sse.h"

#include "data/stats.h"

namespace tcm {
namespace {

Status CheckShapes(const Dataset& original, const Dataset& anonymized) {
  if (original.NumRecords() != anonymized.NumRecords()) {
    return Status::InvalidArgument("record counts differ");
  }
  if (original.NumAttributes() != anonymized.NumAttributes()) {
    return Status::InvalidArgument("attribute counts differ");
  }
  if (original.NumRecords() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  return Status::Ok();
}

}  // namespace

Result<double> NormalizedSseOverAttributes(const Dataset& original,
                                           const Dataset& anonymized,
                                           const std::vector<size_t>& attrs) {
  TCM_RETURN_IF_ERROR(CheckShapes(original, anonymized));
  if (attrs.empty()) {
    return Status::InvalidArgument("no attributes to evaluate");
  }
  const size_t n = original.NumRecords();
  const size_t m = attrs.size();

  // Per-attribute inverse ranges from the original data.
  std::vector<double> inv_range(m, 0.0);
  for (size_t j = 0; j < m; ++j) {
    if (attrs[j] >= original.NumAttributes()) {
      return Status::OutOfRange("attribute index out of range");
    }
    double range = Range(original.ColumnAsDouble(attrs[j]));
    inv_range[j] = (range > 0.0) ? 1.0 / range : 0.0;
  }

  double total = 0.0;
  for (size_t row = 0; row < n; ++row) {
    double record_sum = 0.0;
    for (size_t j = 0; j < m; ++j) {
      double diff = (original.cell(row, attrs[j]).AsDouble() -
                     anonymized.cell(row, attrs[j]).AsDouble()) *
                    inv_range[j];
      record_sum += diff * diff;
    }
    total += record_sum / static_cast<double>(m);
  }
  return total / static_cast<double>(n);
}

Result<double> NormalizedSse(const Dataset& original,
                             const Dataset& anonymized) {
  std::vector<size_t> qi = original.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }
  return NormalizedSseOverAttributes(original, anonymized, qi);
}

Result<double> RawSse(const Dataset& original, const Dataset& anonymized) {
  TCM_RETURN_IF_ERROR(CheckShapes(original, anonymized));
  std::vector<size_t> qi = original.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }
  double total = 0.0;
  for (size_t row = 0; row < original.NumRecords(); ++row) {
    for (size_t col : qi) {
      double diff = original.cell(row, col).AsDouble() -
                    anonymized.cell(row, col).AsDouble();
      total += diff * diff;
    }
  }
  return total;
}

}  // namespace tcm
