#include "utility/info_loss.h"

#include <cmath>

#include "data/stats.h"

namespace tcm {
namespace {

Status CheckShapes(const Dataset& original, const Dataset& anonymized) {
  if (original.NumRecords() != anonymized.NumRecords() ||
      original.NumAttributes() != anonymized.NumAttributes()) {
    return Status::InvalidArgument("dataset shapes differ");
  }
  if (original.NumRecords() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  return Status::Ok();
}

}  // namespace

Result<StatisticsPreservation> EvaluateStatisticsPreservation(
    const Dataset& original, const Dataset& anonymized) {
  TCM_RETURN_IF_ERROR(CheckShapes(original, anonymized));
  std::vector<size_t> qi = original.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }

  StatisticsPreservation out;
  std::vector<std::vector<double>> orig_cols, anon_cols;
  for (size_t col : qi) {
    orig_cols.push_back(original.ColumnAsDouble(col));
    anon_cols.push_back(anonymized.ColumnAsDouble(col));
  }

  for (size_t j = 0; j < qi.size(); ++j) {
    AttributePreservation ap;
    ap.name = original.schema().at(qi[j]).name;
    ap.mean_absolute_error =
        std::fabs(Mean(orig_cols[j]) - Mean(anon_cols[j]));
    double orig_var = Variance(orig_cols[j]);
    ap.variance_ratio =
        (orig_var > 0.0) ? Variance(anon_cols[j]) / orig_var : 1.0;
    double orig_range = Range(orig_cols[j]);
    ap.range_ratio =
        (orig_range > 0.0) ? Range(anon_cols[j]) / orig_range : 1.0;
    out.attributes.push_back(std::move(ap));
  }

  // Pairwise QI correlation preservation.
  size_t pair_count = 0;
  double pair_sum = 0.0;
  for (size_t a = 0; a < qi.size(); ++a) {
    for (size_t b = a + 1; b < qi.size(); ++b) {
      pair_sum += std::fabs(PearsonCorrelation(orig_cols[a], orig_cols[b]) -
                            PearsonCorrelation(anon_cols[a], anon_cols[b]));
      ++pair_count;
    }
  }
  out.correlation_mad =
      (pair_count > 0) ? pair_sum / static_cast<double>(pair_count) : 0.0;

  // QI <-> confidential correlation preservation.
  std::vector<size_t> conf = original.schema().ConfidentialIndices();
  size_t cross_count = 0;
  double cross_sum = 0.0;
  for (size_t col : conf) {
    std::vector<double> orig_conf = original.ColumnAsDouble(col);
    std::vector<double> anon_conf = anonymized.ColumnAsDouble(col);
    for (size_t j = 0; j < qi.size(); ++j) {
      cross_sum += std::fabs(PearsonCorrelation(orig_cols[j], orig_conf) -
                             PearsonCorrelation(anon_cols[j], anon_conf));
      ++cross_count;
    }
  }
  out.qi_confidential_correlation_mad =
      (cross_count > 0) ? cross_sum / static_cast<double>(cross_count) : 0.0;
  return out;
}

Result<double> Il1sInformationLoss(const Dataset& original,
                                   const Dataset& anonymized) {
  TCM_RETURN_IF_ERROR(CheckShapes(original, anonymized));
  std::vector<size_t> qi = original.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }
  double total = 0.0;
  size_t cells = 0;
  for (size_t col : qi) {
    std::vector<double> orig_col = original.ColumnAsDouble(col);
    double sd = StdDev(orig_col);
    if (sd <= 0.0) continue;  // constant column: no loss possible
    double denom = std::sqrt(2.0) * sd;
    std::vector<double> anon_col = anonymized.ColumnAsDouble(col);
    for (size_t row = 0; row < orig_col.size(); ++row) {
      total += std::fabs(orig_col[row] - anon_col[row]) / denom;
      ++cells;
    }
  }
  if (cells == 0) return 0.0;
  return total / static_cast<double>(cells);
}

}  // namespace tcm
