#include "utility/pmse.h"

#include <algorithm>
#include <cmath>

#include "data/stats.h"

namespace tcm {
namespace {

// Design matrix: intercept + standardized QI columns of both tables
// stacked (original first). Standardization uses the pooled moments so
// both tables get the same map.
struct StackedDesign {
  std::vector<std::vector<double>> rows;  // N x (d+1)
  std::vector<int> labels;                // 0 original, 1 anonymized
};

Result<StackedDesign> BuildDesign(const Dataset& original,
                                  const Dataset& anonymized) {
  if (original.NumRecords() != anonymized.NumRecords() ||
      original.NumAttributes() != anonymized.NumAttributes()) {
    return Status::InvalidArgument("dataset shapes differ");
  }
  if (original.NumRecords() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  std::vector<size_t> qi = original.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }
  const size_t n = original.NumRecords();
  const size_t d = qi.size();

  StackedDesign design;
  // Features: intercept, z_j and z_j^2 per QI. The squares matter:
  // mean-preserving maskings (microaggregation!) leave first moments
  // untouched, so a purely linear discriminator would be blind to them;
  // the variance shrinkage shows up in the squared terms.
  design.rows.assign(2 * n, std::vector<double>(1 + 2 * d, 1.0));
  design.labels.assign(2 * n, 0);
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> orig_col = original.ColumnAsDouble(qi[j]);
    std::vector<double> anon_col = anonymized.ColumnAsDouble(qi[j]);
    std::vector<double> pooled = orig_col;
    pooled.insert(pooled.end(), anon_col.begin(), anon_col.end());
    double mean = Mean(pooled);
    double sd = StdDev(pooled);
    double inv = sd > 0.0 ? 1.0 / sd : 0.0;
    for (size_t i = 0; i < n; ++i) {
      double zo = (orig_col[i] - mean) * inv;
      double za = (anon_col[i] - mean) * inv;
      design.rows[i][1 + 2 * j] = zo;
      design.rows[i][2 + 2 * j] = zo * zo;
      design.rows[n + i][1 + 2 * j] = za;
      design.rows[n + i][2 + 2 * j] = za * za;
      design.labels[n + i] = 1;
    }
  }
  return design;
}

}  // namespace

Result<std::vector<double>> PropensityLogisticFit(const Dataset& original,
                                                  const Dataset& anonymized,
                                                  const PmseOptions& options) {
  TCM_ASSIGN_OR_RETURN(StackedDesign design,
                       BuildDesign(original, anonymized));
  const size_t count = design.rows.size();
  const size_t dims = design.rows[0].size();

  std::vector<double> beta(dims, 0.0);
  for (size_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    // Gradient and Hessian of the log-likelihood.
    std::vector<double> gradient(dims, 0.0);
    std::vector<std::vector<double>> hessian(dims,
                                             std::vector<double>(dims, 0.0));
    for (size_t i = 0; i < count; ++i) {
      const std::vector<double>& x = design.rows[i];
      double linear = 0.0;
      for (size_t j = 0; j < dims; ++j) linear += beta[j] * x[j];
      double p = 1.0 / (1.0 + std::exp(-linear));
      double residual = static_cast<double>(design.labels[i]) - p;
      double weight = p * (1.0 - p);
      for (size_t a = 0; a < dims; ++a) {
        gradient[a] += residual * x[a];
        for (size_t b = a; b < dims; ++b) {
          hessian[a][b] += weight * x[a] * x[b];
        }
      }
    }
    for (size_t a = 0; a < dims; ++a) {
      hessian[a][a] += options.ridge * static_cast<double>(count);
      for (size_t b = 0; b < a; ++b) hessian[a][b] = hessian[b][a];
      gradient[a] -= options.ridge * static_cast<double>(count) * beta[a];
    }
    std::vector<double> step;
    if (!SolveLinearSystem(hessian, gradient, &step)) break;
    double max_step = 0.0;
    for (size_t j = 0; j < dims; ++j) {
      beta[j] += step[j];
      max_step = std::max(max_step, std::fabs(step[j]));
    }
    if (max_step < options.tolerance) break;
  }
  return beta;
}

Result<double> PropensityMse(const Dataset& original,
                             const Dataset& anonymized,
                             const PmseOptions& options) {
  TCM_ASSIGN_OR_RETURN(std::vector<double> beta,
                       PropensityLogisticFit(original, anonymized, options));
  TCM_ASSIGN_OR_RETURN(StackedDesign design,
                       BuildDesign(original, anonymized));
  double total = 0.0;
  for (const std::vector<double>& x : design.rows) {
    double linear = 0.0;
    for (size_t j = 0; j < x.size(); ++j) linear += beta[j] * x[j];
    double p = 1.0 / (1.0 + std::exp(-linear));
    total += (p - 0.5) * (p - 0.5);
  }
  return total / static_cast<double>(design.rows.size());
}

}  // namespace tcm
