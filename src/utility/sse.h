#ifndef TCM_UTILITY_SSE_H_
#define TCM_UTILITY_SSE_H_

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

// Normalized Sum of Squared Errors (paper Eq. 5):
//   SSE = (1/n) sum_records (1/m) sum_attrs NED(a, a')^2
// where NED is the attribute-wise Euclidean distance normalized by the
// attribute's range in the ORIGINAL data set (constant attributes
// contribute 0), and the sum runs over the masked attributes — the
// quasi-identifiers, since microaggregation releases everything else
// unchanged. Result is in [0, 1]-ish (records cannot move farther than
// one range per attribute).
//
// InvalidArgument if shapes differ or there are no quasi-identifiers.
Result<double> NormalizedSse(const Dataset& original,
                             const Dataset& anonymized);

// Same formula restricted to an explicit attribute set (used to evaluate
// baselines that mask other columns).
Result<double> NormalizedSseOverAttributes(const Dataset& original,
                                           const Dataset& anonymized,
                                           const std::vector<size_t>& attrs);

// Classic (un-normalized) SSE over the quasi-identifiers: sum of squared
// raw attribute differences. Reported by some microaggregation papers.
Result<double> RawSse(const Dataset& original, const Dataset& anonymized);

}  // namespace tcm

#endif  // TCM_UTILITY_SSE_H_
