#ifndef TCM_UTILITY_INFO_LOSS_H_
#define TCM_UTILITY_INFO_LOSS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

// How well an anonymized release preserves aggregate statistics of the
// original data. Complements record-level SSE: a release can have a large
// SSE yet still support accurate aggregate analysis, and vice versa.
struct AttributePreservation {
  std::string name;
  double mean_absolute_error = 0.0;      // |mean - mean'|
  double variance_ratio = 1.0;           // var' / var (1 = perfect)
  double range_ratio = 1.0;              // range' / range
};

struct StatisticsPreservation {
  std::vector<AttributePreservation> attributes;  // QIs only
  // Mean absolute deviation between all pairwise QI Pearson correlations
  // of the original and anonymized data.
  double correlation_mad = 0.0;
  // Mean absolute deviation between each QI<->confidential correlation.
  double qi_confidential_correlation_mad = 0.0;
};

// InvalidArgument if shapes differ or there are no quasi-identifiers.
Result<StatisticsPreservation> EvaluateStatisticsPreservation(
    const Dataset& original, const Dataset& anonymized);

// IL1s-style information loss (Yancey/Winkler/Creecy): mean over cells of
// |a - a'| / (sqrt(2) * stddev of the original attribute). Standard in the
// SDC literature; lower is better.
Result<double> Il1sInformationLoss(const Dataset& original,
                                   const Dataset& anonymized);

}  // namespace tcm

#endif  // TCM_UTILITY_INFO_LOSS_H_
