#include "utility/query.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "data/stats.h"

namespace tcm {

Result<RangeQueryAccuracy> EvaluateRangeQueries(
    const Dataset& original, const Dataset& anonymized,
    const RangeQueryOptions& options) {
  if (original.NumRecords() != anonymized.NumRecords() ||
      original.NumAttributes() != anonymized.NumAttributes()) {
    return Status::InvalidArgument("dataset shapes differ");
  }
  if (original.NumRecords() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  if (options.selectivity <= 0.0 || options.selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must be in (0, 1]");
  }
  if (options.num_queries == 0) {
    return Status::InvalidArgument("num_queries must be positive");
  }
  std::vector<size_t> qi = original.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }

  std::vector<std::vector<double>> orig_cols, anon_cols;
  std::vector<double> lo(qi.size()), width(qi.size());
  for (size_t j = 0; j < qi.size(); ++j) {
    orig_cols.push_back(original.ColumnAsDouble(qi[j]));
    anon_cols.push_back(anonymized.ColumnAsDouble(qi[j]));
    lo[j] = Min(orig_cols[j]);
    width[j] = Range(orig_cols[j]);
  }

  Rng rng(options.seed);
  RangeQueryAccuracy out;
  out.num_queries = options.num_queries;
  const size_t n = original.NumRecords();
  double total_abs = 0.0, total_rel = 0.0;
  for (size_t q = 0; q < options.num_queries; ++q) {
    // Random box: per attribute an interval of `selectivity` of the range.
    std::vector<double> box_lo(qi.size()), box_hi(qi.size());
    for (size_t j = 0; j < qi.size(); ++j) {
      double span = width[j] * options.selectivity;
      double start = lo[j] + (width[j] - span) * rng.NextDouble();
      box_lo[j] = start;
      box_hi[j] = start + span;
    }
    size_t count_orig = 0, count_anon = 0;
    for (size_t row = 0; row < n; ++row) {
      bool in_orig = true, in_anon = true;
      for (size_t j = 0; j < qi.size() && (in_orig || in_anon); ++j) {
        double vo = orig_cols[j][row];
        double va = anon_cols[j][row];
        in_orig = in_orig && vo >= box_lo[j] && vo <= box_hi[j];
        in_anon = in_anon && va >= box_lo[j] && va <= box_hi[j];
      }
      count_orig += in_orig ? 1 : 0;
      count_anon += in_anon ? 1 : 0;
    }
    double abs_err = std::fabs(static_cast<double>(count_orig) -
                               static_cast<double>(count_anon));
    total_abs += abs_err;
    total_rel += abs_err / std::max<double>(1.0, count_orig);
    out.max_absolute_error = std::max(out.max_absolute_error, abs_err);
  }
  out.mean_absolute_error = total_abs / static_cast<double>(out.num_queries);
  out.mean_relative_error = total_rel / static_cast<double>(out.num_queries);
  return out;
}

}  // namespace tcm
