#ifndef TCM_UTILITY_PMSE_H_
#define TCM_UTILITY_PMSE_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

// Propensity-score mean-squared error (Woo et al. 2009; Snoke et al.
// 2018), the SDC community's discriminator-based utility measure: stack
// the original and anonymized records, fit a classifier predicting which
// table a record came from, and score
//     pMSE = (1/N) * sum_i (p_hat_i - 1/2)^2.
// A release indistinguishable from the original yields p_hat ~ 1/2
// everywhere (pMSE ~ 0); the more the masking distorts the joint QI
// distribution, the better the discriminator and the larger the pMSE.
// The classifier here is logistic regression on the (standardized)
// quasi-identifiers with intercept, fit by Newton-Raphson.

struct PmseOptions {
  size_t max_iterations = 50;
  double tolerance = 1e-8;
  // L2 ridge on the Newton step; keeps the Hessian invertible when the
  // tables are linearly separable (extremely distorted releases).
  double ridge = 1e-6;
};

// InvalidArgument if shapes differ or there are no quasi-identifiers.
Result<double> PropensityMse(const Dataset& original,
                             const Dataset& anonymized,
                             const PmseOptions& options = {});

// The fitted coefficients (intercept first), exposed for tests and for
// inspecting which attribute betrays the release.
Result<std::vector<double>> PropensityLogisticFit(
    const Dataset& original, const Dataset& anonymized,
    const PmseOptions& options = {});

}  // namespace tcm

#endif  // TCM_UTILITY_PMSE_H_
