#ifndef TCM_BASELINE_RECODING_H_
#define TCM_BASELINE_RECODING_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

// Global-recoding (full-domain generalization) baseline in the spirit of
// Incognito: every quasi-identifier is discretized into equal-width bins
// (values replaced by bin centres) and the bin counts are coarsened —
// halving the attribute with the most bins — until the release satisfies
// k-anonymity and, when t >= 0, t-closeness. This is the
// generalization-style comparator whose granularity loss Section 4 of the
// paper argues against; the SSE benches quantify that argument.
struct RecodingResult {
  Dataset anonymized;
  std::vector<size_t> bins_per_attribute;  // final lattice node, QIs only
  size_t coarsenings = 0;                  // halvings performed
};

struct RecodingOptions {
  size_t initial_bins = 32;
  // t < 0 disables the t-closeness constraint (plain k-anonymity search).
  double t = -1.0;
  size_t confidential_offset = 0;
};

// InvalidArgument if k == 0, k > n or there are no quasi-identifiers.
// Always terminates: with one bin per attribute the release is a single
// equivalence class (EMD 0).
Result<RecodingResult> GlobalRecodingAnonymize(
    const Dataset& data, size_t k, const RecodingOptions& options = {});

}  // namespace tcm

#endif  // TCM_BASELINE_RECODING_H_
