#ifndef TCM_BASELINE_MONDRIAN_H_
#define TCM_BASELINE_MONDRIAN_H_

#include "common/result.h"
#include "distance/emd.h"
#include "distance/qi_space.h"
#include "microagg/partition.h"

namespace tcm {

// Mondrian multidimensional partitioning (LeFevre et al. 2006), the
// generalization-style baseline the paper's related work adapts to
// t-closeness (Li et al. 2010). Relaxed variant: recursively split the
// record set on the quasi-identifier with the widest normalized spread at
// the index median, while both halves keep >= k records. Leaves become
// clusters; aggregating them (or recoding them to ranges) yields a
// k-anonymous release.
//
// InvalidArgument if k == 0 or k > n.
Result<Partition> MondrianPartition(const QiSpace& space, size_t k);

// Mondrian with the t-closeness constraint folded into the split test:
// a split is only taken when both halves have EMD <= t against the whole
// data set, so the resulting release is k-anonymous AND t-close (the root
// always satisfies EMD = 0).
Result<Partition> MondrianTClosePartition(const QiSpace& space,
                                          const EmdCalculator& emd, size_t k,
                                          double t);

}  // namespace tcm

#endif  // TCM_BASELINE_MONDRIAN_H_
