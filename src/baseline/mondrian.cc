#include "baseline/mondrian.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace tcm {
namespace {

struct SplitContext {
  const QiSpace* space = nullptr;
  const EmdCalculator* emd = nullptr;  // null: no t-closeness constraint
  size_t k = 0;
  double t = 0.0;
  Partition* out = nullptr;
};

// Spread (max - min) of rows along dimension `dim`.
double SpreadAlong(const QiSpace& space, const std::vector<size_t>& rows,
                   size_t dim) {
  double lo = space.point(rows[0])[dim];
  double hi = lo;
  for (size_t row : rows) {
    double v = space.point(row)[dim];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi - lo;
}

bool HalvesSatisfyConstraint(const SplitContext& ctx,
                             const std::vector<size_t>& left,
                             const std::vector<size_t>& right) {
  if (left.size() < ctx.k || right.size() < ctx.k) return false;
  if (ctx.emd == nullptr) return true;
  return ctx.emd->ClusterEmd(left) <= ctx.t &&
         ctx.emd->ClusterEmd(right) <= ctx.t;
}

void Split(const SplitContext& ctx, std::vector<size_t> rows) {
  // Dimensions ordered by decreasing spread; try each until a valid cut.
  const QiSpace& space = *ctx.space;
  if (rows.size() >= 2 * ctx.k) {
    std::vector<size_t> dims(space.num_dims());
    std::iota(dims.begin(), dims.end(), 0);
    std::vector<double> spreads(space.num_dims());
    for (size_t dim : dims) spreads[dim] = SpreadAlong(space, rows, dim);
    std::stable_sort(dims.begin(), dims.end(), [&](size_t a, size_t b) {
      return spreads[a] > spreads[b];
    });
    for (size_t dim : dims) {
      if (spreads[dim] <= 0.0) break;  // no dimension can separate rows
      std::vector<size_t> ordered = rows;
      std::stable_sort(ordered.begin(), ordered.end(),
                       [&](size_t a, size_t b) {
                         return space.point(a)[dim] < space.point(b)[dim];
                       });
      size_t mid = ordered.size() / 2;
      std::vector<size_t> left(ordered.begin(), ordered.begin() + mid);
      std::vector<size_t> right(ordered.begin() + mid, ordered.end());
      if (HalvesSatisfyConstraint(ctx, left, right)) {
        Split(ctx, std::move(left));
        Split(ctx, std::move(right));
        return;
      }
    }
  }
  ctx.out->clusters.push_back(std::move(rows));  // leaf
}

Result<Partition> RunMondrian(const QiSpace& space, const EmdCalculator* emd,
                              size_t k, double t) {
  const size_t n = space.num_records();
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > n) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds number of records " +
                                   std::to_string(n));
  }
  if (emd != nullptr && t < 0.0) {
    return Status::InvalidArgument("t must be non-negative");
  }
  Partition partition;
  SplitContext ctx{&space, emd, k, t, &partition};
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  Split(ctx, std::move(all));
  return partition;
}

}  // namespace

Result<Partition> MondrianPartition(const QiSpace& space, size_t k) {
  return RunMondrian(space, nullptr, k, 0.0);
}

Result<Partition> MondrianTClosePartition(const QiSpace& space,
                                          const EmdCalculator& emd, size_t k,
                                          double t) {
  return RunMondrian(space, &emd, k, t);
}

}  // namespace tcm
