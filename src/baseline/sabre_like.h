#ifndef TCM_BASELINE_SABRE_LIKE_H_
#define TCM_BASELINE_SABRE_LIKE_H_

#include "common/result.h"
#include "distance/emd.h"
#include "distance/qi_space.h"
#include "microagg/partition.h"

namespace tcm {

struct SabreLikeOptions {
  // SABRE builds its buckets greedily and — as the paper's related-work
  // section argues — may end up with more buckets than the analytic
  // minimum, hence larger equivalence classes and more information loss.
  // This factor models that overshoot: the bucket count is
  // ceil(oversampling * k*) with k* the Algorithm-3 minimum.
  double bucket_oversampling = 1.5;
};

struct SabreLikeStats {
  size_t buckets = 0;       // bucket count actually used
  size_t analytic_k = 0;    // Algorithm 3's minimal cluster size
};

// SABRE-like baseline (Cao et al. 2011): Sensitive Attribute Bucketization
// and REdistribution. We model its two phases — bucketize the confidential
// attribute, then build each equivalence class by drawing records from
// every bucket — on top of the same subset-draw engine as Algorithm 3, but
// with the greedy (conservative) bucket count. This isolates exactly the
// difference the paper highlights: analytic-minimal vs greedy bucketing.
//
// The result is k-anonymous and t-close (more buckets only tighten the
// Proposition 2 bound).
Result<Partition> SabreLikePartition(const QiSpace& space,
                                     const EmdCalculator& emd, size_t k,
                                     double t,
                                     const SabreLikeOptions& options = {},
                                     SabreLikeStats* stats = nullptr);

}  // namespace tcm

#endif  // TCM_BASELINE_SABRE_LIKE_H_
