#include "baseline/recoding.h"

#include <algorithm>
#include <cmath>

#include "data/stats.h"
#include "privacy/kanonymity.h"
#include "privacy/tcloseness.h"

namespace tcm {
namespace {

// Discretizes every QI column of `data` into `bins[j]` equal-width bins,
// writing bin centres. One bin maps the whole column to its midpoint.
Result<Dataset> RecodeToBins(const Dataset& data,
                             const std::vector<size_t>& qi,
                             const std::vector<size_t>& bins) {
  Dataset out = data;
  for (size_t j = 0; j < qi.size(); ++j) {
    std::vector<double> col = data.ColumnAsDouble(qi[j]);
    double lo = Min(col);
    double width = Range(col);
    size_t b = std::max<size_t>(1, bins[j]);
    for (size_t row = 0; row < col.size(); ++row) {
      double centre;
      if (width <= 0.0 || b == 1) {
        centre = lo + width / 2.0;
      } else {
        double relative = (col[row] - lo) / width;  // in [0, 1]
        size_t bin = std::min<size_t>(b - 1, static_cast<size_t>(
                                                 relative * static_cast<double>(b)));
        double bin_width = width / static_cast<double>(b);
        centre = lo + (static_cast<double>(bin) + 0.5) * bin_width;
      }
      TCM_RETURN_IF_ERROR(out.SetCell(row, qi[j], Value::Numeric(centre)));
    }
  }
  return out;
}

}  // namespace

Result<RecodingResult> GlobalRecodingAnonymize(const Dataset& data, size_t k,
                                               const RecodingOptions& options) {
  const size_t n = data.NumRecords();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  std::vector<size_t> qi = data.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }
  if (options.initial_bins == 0) {
    return Status::InvalidArgument("initial_bins must be positive");
  }

  std::vector<size_t> bins(qi.size(), options.initial_bins);
  size_t coarsenings = 0;
  while (true) {
    TCM_ASSIGN_OR_RETURN(Dataset candidate, RecodeToBins(data, qi, bins));
    TCM_ASSIGN_OR_RETURN(bool k_ok, IsKAnonymous(candidate, k));
    bool t_ok = true;
    if (k_ok && options.t >= 0.0) {
      TCM_ASSIGN_OR_RETURN(
          t_ok, IsTClose(candidate, options.t, options.confidential_offset));
    }
    if (k_ok && t_ok) {
      RecodingResult result{std::move(candidate), bins, coarsenings};
      return result;
    }
    // Coarsen the attribute with the most bins (ties -> first).
    size_t widest = 0;
    for (size_t j = 1; j < bins.size(); ++j) {
      if (bins[j] > bins[widest]) widest = j;
    }
    if (bins[widest] <= 1) {
      // Fully generalized and still failing — impossible: one bin per
      // attribute is a single equivalence class.
      return Status::Internal("recoding lattice exhausted");
    }
    bins[widest] = std::max<size_t>(1, bins[widest] / 2);
    ++coarsenings;
  }
}

}  // namespace tcm
