#include "baseline/sabre_like.h"

#include <algorithm>
#include <cmath>

#include "distance/emd_bounds.h"
#include "tclose/tclose_first.h"

namespace tcm {

Result<Partition> SabreLikePartition(const QiSpace& space,
                                     const EmdCalculator& emd, size_t k,
                                     double t, const SabreLikeOptions& options,
                                     SabreLikeStats* stats) {
  const size_t n = space.num_records();
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > n) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds number of records " +
                                   std::to_string(n));
  }
  if (t < 0.0) return Status::InvalidArgument("t must be non-negative");
  if (options.bucket_oversampling < 1.0) {
    return Status::InvalidArgument("bucket_oversampling must be >= 1");
  }

  size_t analytic = RequiredClusterSize(n, k, t);
  size_t buckets = static_cast<size_t>(
      std::ceil(options.bucket_oversampling * static_cast<double>(analytic)));
  buckets = std::max(buckets, k);
  buckets = AdjustClusterSizeForRemainder(n, std::min(buckets, n));
  if (stats != nullptr) {
    stats->buckets = buckets;
    stats->analytic_k = analytic;
  }
  return SubsetDrawPartition(space, emd, buckets);
}

}  // namespace tcm
