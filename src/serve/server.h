#ifndef TCM_SERVE_SERVER_H_
#define TCM_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/http.h"
#include "serve/job_queue.h"
#include "serve/protocol.h"

namespace tcm {

struct ServeOptions {
  // Bind address. Numeric IPv4 only; the daemon is designed to sit on
  // loopback behind a fronting proxy, not on the open internet.
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 binds an ephemeral port (read it from port())

  // Workers in the shared job pool; 0 means one per hardware thread.
  size_t threads = 0;

  // Backpressure bound: queued + running jobs before submits are
  // rejected with kFailedPrecondition.
  size_t max_pending = 64;

  // Retention bound: terminal jobs kept for status queries; the oldest-
  // completed record is evicted past the cap (queries for it then fail
  // with kFailedPrecondition naming the eviction). 0 keeps every record
  // for the daemon's lifetime — an unbounded leak on a long-lived
  // server, so the daemon defaults to a bound.
  size_t max_terminal_jobs = 1024;

  // Honor the remote "shutdown" verb. Off, the verb is refused with
  // kUnimplemented and only RequestShutdown()/signals stop the daemon.
  bool allow_remote_shutdown = true;

  // Concurrent connections across both fronts. Past the cap a new peer
  // is told why on the wire — an error event (NDJSON) or a 503 (HTTP) —
  // and closed, instead of silently growing one handler thread per
  // accept without bound. 0 = uncapped (the embedder default; the
  // tcm_serve daemon bounds it).
  size_t max_connections = 0;

  // Receive deadline applied to every connection: a peer silent for
  // longer than this mid-read is dropped (its handler thread released),
  // so idle or stalled clients cannot pin threads forever. 0 = none
  // (the embedder default; the daemon bounds it).
  int idle_timeout_ms = 0;

  // HTTP/1.1 front (serve/http.h, README "HTTP serving"): the same
  // verbs as routes on a second listener — the NDJSON protocol is
  // hello-first, so one port cannot carry both. Shares the queue, the
  // connection table, the cap and the idle timeout above.
  bool enable_http = false;
  uint16_t http_port = 0;       // 0 binds an ephemeral port (http_port())
  std::string http_auth_token;  // empty = unauthenticated front
  HttpLimits http_limits;       // head/body bounds + request deadline
};

// JobServer: the long-running tcm_serve daemon core. Listens on a TCP
// socket, speaks the newline-delimited JSON protocol of
// serve/protocol.h, and executes submitted JobSpecs on one shared
// ThreadPool through a bounded JobQueue. Embeddable: tests boot it
// in-process on an ephemeral port; tools/tcm_serve.cc wraps it with
// signal handling.
//
// Lifecycle: Start() binds and spawns the accept loop, then each
// connection gets a handler thread (requests on one connection are
// served in order; concurrency comes from concurrent connections and
// the shared pool). RequestShutdown() — from any thread, a connection's
// shutdown verb, or a signal watcher — stops accepting connections and
// jobs; Wait() then drains every outstanding job, delivers the final
// events, closes connections and joins every thread: the graceful-drain
// contract the test wall pins.
class JobServer {
 public:
  explicit JobServer(ServeOptions options = {});

  // RequestShutdown() + Wait() if still running.
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  // Binds, listens and starts accepting. kIoError when the address
  // cannot be bound. Call once.
  Status Start() TCM_EXCLUDES(shutdown_mutex_);

  // The bound port (the ephemeral pick when options.port was 0). Valid
  // after a successful Start().
  uint16_t port() const { return port_; }

  // The HTTP front's bound port. Valid after a successful Start() with
  // options.enable_http; 0 when the front is off.
  uint16_t http_port() const { return http_port_; }

  // Idempotent, non-blocking, callable from any thread including
  // connection handlers: stops the accept loop and rejects all further
  // job submissions. Drain happens in Wait().
  void RequestShutdown() TCM_EXCLUDES(shutdown_mutex_);

  // Blocks until shutdown is requested, then drains: waits for every
  // queued/running job to finish (their waiters receive the terminal
  // events), wakes idle connections, joins all threads and releases the
  // sockets. Returns once the daemon is fully stopped. Call from one
  // thread (the one that owns the server's lifetime).
  void Wait() TCM_EXCLUDES(shutdown_mutex_, connections_mutex_);

  size_t pending_jobs() const { return queue_->pending(); }

 private:
  struct Connection {
    LineChannel channel;
    std::thread thread;
    bool http = false;  // which front accepted it
    // Set by the handler thread as its very last action, after the
    // final use of `channel`; published with release semantics and read
    // with acquire by the reaper, which then join()s the thread before
    // destroying the Connection. The join is what makes the destruction
    // safe — `done` only tells the reaper which threads are worth
    // joining on the accept loop's opportunistic sweep.
    std::atomic<bool> done{false};
  };

  // Binds host:port, listens, and returns the descriptor; `bound_port`
  // receives the kernel's pick when `port` was 0.
  Result<int> BindListener(uint16_t port, uint16_t* bound_port) const;
  // One accept loop per front; `http` tags the connections it admits.
  void AcceptLoop(int listen_fd, bool http)
      TCM_EXCLUDES(shutdown_mutex_, connections_mutex_);
  // Registers `fd` as a connection of the given front and spawns its
  // handler — or, past options_.max_connections, rejects it on the wire
  // and closes it.
  void AdmitConnection(int fd, bool http) TCM_EXCLUDES(connections_mutex_);
  void HandleConnection(Connection* connection);
  // True while the connection should keep reading requests.
  bool HandleRequest(LineChannel* channel, const std::string& line);
  void ReapFinishedConnectionsLocked() TCM_REQUIRES(connections_mutex_);

  ServeOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<JobQueue> queue_;

  // Written once by Start() before the accept threads exist; reads from
  // other threads see the values through the thread-creation
  // happens-before edge. Not guarded: all are immutable after Start().
  uint16_t port_ = 0;
  uint16_t http_port_ = 0;
  bool started_ = false;

  std::thread accept_thread_;
  std::thread http_accept_thread_;

  std::atomic<bool> stopping_{false};
  mutable Mutex shutdown_mutex_;
  CondVar shutdown_requested_;
  // The listening socket. RequestShutdown (any thread, including
  // connection handlers) calls ::shutdown on it while Wait ::close()s
  // and invalidates it; unguarded, that pair can race onto a recycled
  // descriptor. Every touch after Start() therefore holds
  // shutdown_mutex_.
  int listen_fd_ TCM_GUARDED_BY(shutdown_mutex_) = -1;
  int http_listen_fd_ TCM_GUARDED_BY(shutdown_mutex_) = -1;
  // Folded under shutdown_mutex_ so a second Wait() (e.g. explicit call
  // followed by the destructor's) observes the first one's completion
  // without relying on the caller to serialize.
  bool finished_ TCM_GUARDED_BY(shutdown_mutex_) = false;

  mutable Mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      TCM_GUARDED_BY(connections_mutex_);
};

}  // namespace tcm

#endif  // TCM_SERVE_SERVER_H_
