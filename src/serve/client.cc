#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tcm {

Result<ServeClient> ServeClient::Connect(const std::string& host,
                                         uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    return Status::InvalidArgument("host must be a numeric IPv4 address, "
                                   "got \"" + host + "\"");
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) < 0) {
    Status status = Status::IoError("cannot connect to " + host + ":" +
                                    std::to_string(port) + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }

  ServeClient client{LineChannel(fd)};
  TCM_ASSIGN_OR_RETURN(JsonValue hello, client.ReadEvent());
  const JsonValue* event = hello.Find("event");
  if (event != nullptr && event->is_string() &&
      event->string_value() == "error") {
    // The server may reject a connection instead of greeting it (the
    // connection cap). Surface its own message so callers can back off
    // and retry rather than treating this as a protocol violation.
    const JsonValue* message = hello.Find("message");
    return Status::FailedPrecondition(
        message != nullptr && message->is_string()
            ? message->string_value()
            : "server rejected the connection");
  }
  const JsonValue* protocol = hello.Find("protocol");
  if (event == nullptr || !event->is_string() ||
      event->string_value() != "hello" || protocol == nullptr) {
    return Status::IoError("peer did not send a tcm_serve hello");
  }
  TCM_ASSIGN_OR_RETURN(uint64_t version, protocol->GetUint());
  if (version != static_cast<uint64_t>(kServeProtocolVersion)) {
    return Status::FailedPrecondition(
        "server speaks protocol version " + std::to_string(version) +
        ", this client speaks " + std::to_string(kServeProtocolVersion));
  }
  client.protocol_ = static_cast<int>(version);
  return client;
}

Status ServeClient::Send(const ServeRequest& request) {
  return SendText(request.ToJsonText());
}

Status ServeClient::Send(const JsonValue& request) {
  return SendText(request.Write(-1));
}

Status ServeClient::SendText(const std::string& line) {
  return channel_.WriteLine(line);
}

Result<JsonValue> ServeClient::ReadEvent() {
  TCM_ASSIGN_OR_RETURN(std::string line, channel_.ReadLine());
  return ParseJson(line);
}

Result<JsonValue> ServeClient::SubmitAndWait(JsonValue spec_json) {
  JsonValue request = JsonValue::MakeObject();
  request.Set("verb", "submit");
  request.Set("spec", std::move(spec_json));
  TCM_RETURN_IF_ERROR(Send(request));

  while (true) {
    TCM_ASSIGN_OR_RETURN(JsonValue event, ReadEvent());
    const JsonValue* name = event.Find("event");
    if (name == nullptr || !name->is_string()) {
      return Status::IoError("peer sent an event without a name");
    }
    if (name->string_value() == "error") return event;
    if (name->string_value() == "state") {
      const JsonValue* state = event.Find("state");
      if (state != nullptr && state->is_string()) {
        const std::string& value = state->string_value();
        if (value == "succeeded" || value == "failed" ||
            value == "cancelled") {
          return event;
        }
      }
    }
    // accepted / non-terminal state events: keep streaming.
  }
}

Result<JsonValue> ServeClient::Stats() {
  ServeRequest request;
  request.verb = ServeVerb::kStats;
  TCM_RETURN_IF_ERROR(Send(request));
  return ReadEvent();
}

}  // namespace tcm
