#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace tcm {

JobServer::JobServer(ServeOptions options) : options_(std::move(options)) {
  pool_ = std::make_unique<ThreadPool>(options_.threads);
  queue_ = std::make_unique<JobQueue>(pool_.get(), options_.max_pending,
                                      options_.max_terminal_jobs);
}

JobServer::~JobServer() {
  RequestShutdown();
  Wait();
}

Result<int> JobServer::BindListener(uint16_t port,
                                    uint16_t* bound_port) const {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("host must be a numeric IPv4 address, "
                                   "got \"" + options_.host + "\"");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) <
      0) {
    Status status = Status::IoError("cannot bind " + options_.host + ":" +
                                    std::to_string(port) + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    Status status = Status::IoError(std::string("listen failed: ") +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    Status status = Status::IoError(std::string("getsockname failed: ") +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

Status JobServer::Start() {
  if (started_) return Status::FailedPrecondition("Start() called twice");

  auto fd = BindListener(options_.port, &port_);
  if (!fd.ok()) return fd.status();

  int http_fd = -1;
  if (options_.enable_http) {
    auto bound = BindListener(options_.http_port, &http_port_);
    if (!bound.ok()) {
      ::close(*fd);
      return bound.status();
    }
    http_fd = *bound;
  }

  {
    MutexLock lock(shutdown_mutex_);
    listen_fd_ = *fd;
    http_listen_fd_ = http_fd;
  }
  started_ = true;
  accept_thread_ =
      std::thread([this, fd = *fd]() { AcceptLoop(fd, /*http=*/false); });
  if (http_fd >= 0) {
    http_accept_thread_ =
        std::thread([this, http_fd]() { AcceptLoop(http_fd, /*http=*/true); });
  }
  return Status::Ok();
}

void JobServer::RequestShutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  {
    // Wake the accept loop: a shutdown() on a listening socket makes the
    // blocked accept() return with an error on every mainstream
    // platform. Under shutdown_mutex_ because Wait() closes and
    // invalidates the descriptor under the same lock — unguarded, this
    // ::shutdown could land on a recycled fd. Holding the lock here
    // also pairs with Wait()'s predicate check: a notify cannot slip
    // between the waiter's stopping_ check and its sleep.
    MutexLock lock(shutdown_mutex_);
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (http_listen_fd_ >= 0) ::shutdown(http_listen_fd_, SHUT_RDWR);
  }
  // Reject submissions immediately — drain itself happens in Wait().
  queue_->CloseSubmissions();
  shutdown_requested_.NotifyAll();
}

void JobServer::Wait() {
  {
    MutexLock lock(shutdown_mutex_);
    while (!stopping_.load()) shutdown_requested_.Wait(lock);
    if (finished_) return;
    finished_ = true;
    // The teardown below runs unlocked: the accept loop and connection
    // handlers take shutdown_mutex_ themselves (fd copy, nested
    // RequestShutdown), so joining them while holding it would deadlock.
  }

  if (accept_thread_.joinable()) accept_thread_.join();
  if (http_accept_thread_.joinable()) http_accept_thread_.join();

  // Finish every queued and running job first — connection handlers
  // blocked in WaitForChange receive the terminal events while their
  // sockets are still fully open.
  queue_->Drain();

  // Wake handlers idling in ReadLine with end-of-stream; the write side
  // stays up so in-flight final events still reach the client.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    MutexLock lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (const std::unique_ptr<Connection>& connection : connections) {
    connection->channel.ShutdownRead();
  }
  for (const std::unique_ptr<Connection>& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  connections.clear();  // closes the sockets

  pool_->Shutdown();
  {
    MutexLock lock(shutdown_mutex_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (http_listen_fd_ >= 0) {
      ::close(http_listen_fd_);
      http_listen_fd_ = -1;
    }
  }
}

// The descriptor stays valid for the loop's whole lifetime because
// Wait() joins this thread before closing it.
void JobServer::AcceptLoop(int listen_fd, bool http) {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors is transient under load: back off briefly
        // instead of permanently refusing all future connections.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      break;  // listener shut down (or a fatal accept error): stop
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    AdmitConnection(fd, http);
  }
  // If the loop died on an unexpected accept() error rather than an
  // orderly stop, turn it into a drain: a daemon that looks healthy but
  // can never accept again must exit, not linger as a zombie.
  if (!stopping_.load()) RequestShutdown();
}

void JobServer::AdmitConnection(int fd, bool http) {
  auto connection = std::make_unique<Connection>();
  connection->channel = LineChannel(fd);
  connection->http = http;
  Connection* raw = connection.get();
  {
    MutexLock lock(connections_mutex_);
    ReapFinishedConnectionsLocked();
    if (options_.max_connections > 0 &&
        connections_.size() >= options_.max_connections) {
      // Over the cap: tell the peer why in its own protocol and close.
      // The rejection is written from the accept thread — both messages
      // are far smaller than a socket send buffer, so this cannot
      // block the listener on a slow peer.
      MetricsRegistry::Global().IncrementCounter(
          "serve.connections_rejected");
      Status status = Status::FailedPrecondition(
          "connection limit (" + std::to_string(options_.max_connections) +
          ") reached; retry later");
      JsonValue event = MakeErrorEvent(std::nullopt, status);
      if (http) {
        connection->channel.WriteAll(
            WriteHttpResponse(503, event, /*keep_alive=*/false));
      } else {
        connection->channel.WriteLine(event.Write(-1));
      }
      return;  // `connection` closes the socket on destruction
    }
    connections_.push_back(std::move(connection));
    // Spawn while still holding connections_mutex_. With two accept
    // loops the other thread can reap concurrently; if this assignment
    // ran unlocked and the handler finished first, the reaper would see
    // done==true with a not-yet-joinable thread, erase the Connection,
    // and the assignment would write into freed memory. Handlers never
    // take connections_mutex_, so holding it across the spawn cannot
    // deadlock.
    raw->thread = std::thread([this, raw]() { HandleConnection(raw); });
  }
}

// Long-running daemons see many short-lived connections; joining the
// finished ones on each accept keeps the table from growing without
// bound.
void JobServer::ReapFinishedConnectionsLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void JobServer::HandleConnection(Connection* connection) {
  LineChannel* channel = &connection->channel;
  if (options_.idle_timeout_ms > 0) {
    channel->SetReadTimeout(options_.idle_timeout_ms);
  }
  if (connection->http) {
    HttpFrontOptions front;
    front.auth_token = options_.http_auth_token;
    front.limits = options_.http_limits;
    front.limits.idle_timeout_ms = options_.idle_timeout_ms;
    ServeHttpConnection(channel, queue_.get(), front);
  } else if (channel
                 ->WriteLine(MakeHelloEvent(options_.max_pending).Write(-1))
                 .ok()) {
    while (true) {
      auto line = channel->ReadLine();
      if (!line.ok()) break;  // peer closed, went idle, or drain woke us
      if (line->find_first_not_of(" \t\r") == std::string::npos) continue;
      if (!HandleRequest(channel, *line)) break;
    }
  }
  // Hang up now: the peer must see end-of-stream the moment serving
  // ends, not when the connection object is reaped on some future
  // accept. The fd stays allocated until the reaper destroys the
  // channel, so Wait()'s concurrent ShutdownRead cannot hit a recycled
  // descriptor.
  channel->ShutdownBoth();
  // Publication order matters: this store is the handler's final
  // action, strictly after the last use of connection->channel, so the
  // reaper's acquire load + join sees a connection whose resources are
  // quiescent before destroying it.
  connection->done.store(true, std::memory_order_release);
}

bool JobServer::HandleRequest(LineChannel* channel,
                              const std::string& line) {
  auto parsed = ServeRequest::FromJsonText(line);
  if (!parsed.ok()) {
    // One bad line does not poison the connection: report and carry on,
    // like the CLI rejecting one malformed invocation.
    return channel->WriteLine(
        MakeErrorEvent(std::nullopt, parsed.status()).Write(-1)).ok();
  }
  ServeRequest& request = *parsed;

  switch (request.verb) {
    case ServeVerb::kPing:
      return channel
          ->WriteLine(MakePongEvent(request.id, queue_->pending(),
                                    queue_->total_jobs())
                          .Write(-1))
          .ok();

    case ServeVerb::kStats: {
      JobStateCounts counts = queue_->StateCounts();
      return channel
          ->WriteLine(MakeStatsEvent(request.id, counts, counts.queued,
                                     MetricsRegistry::Global().SnapshotJson())
                          .Write(-1))
          .ok();
    }

    case ServeVerb::kStatus: {
      auto snapshot = queue_->Status(*request.job);
      if (!snapshot.ok()) {
        return channel
            ->WriteLine(MakeErrorEvent(request.id, snapshot.status())
                            .Write(-1))
            .ok();
      }
      return channel->WriteLine(MakeStateEvent(request.id, *snapshot)
                                    .Write(-1)).ok();
    }

    case ServeVerb::kCancel: {
      auto snapshot = queue_->Cancel(*request.job);
      if (!snapshot.ok()) {
        return channel
            ->WriteLine(MakeErrorEvent(request.id, snapshot.status())
                            .Write(-1))
            .ok();
      }
      return channel->WriteLine(MakeStateEvent(request.id, *snapshot)
                                    .Write(-1)).ok();
    }

    case ServeVerb::kShutdown: {
      if (!options_.allow_remote_shutdown) {
        return channel
            ->WriteLine(MakeErrorEvent(request.id,
                                       Status::Unimplemented(
                                           "remote shutdown is disabled"))
                            .Write(-1))
            .ok();
      }
      if (!channel->WriteLine(MakeDrainingEvent(request.id).Write(-1))
               .ok()) {
        return false;
      }
      // Only flags are set here; the drain itself runs in Wait(), so a
      // connection handler can safely request it.
      RequestShutdown();
      return true;
    }

    case ServeVerb::kSubmit: {
      auto job_id = queue_->Submit(std::move(*request.spec));
      if (!job_id.ok()) {
        return channel
            ->WriteLine(MakeErrorEvent(request.id, job_id.status())
                            .Write(-1))
            .ok();
      }
      if (!channel
               ->WriteLine(MakeAcceptedEvent(request.id, *job_id,
                                             queue_->pending())
                               .Write(-1))
               .ok()) {
        return false;
      }
      if (!request.wait) return true;
      JobState seen = JobState::kQueued;
      while (true) {
        auto snapshot = queue_->WaitForChange(*job_id, seen);
        if (!snapshot.ok()) {
          return channel
              ->WriteLine(MakeErrorEvent(request.id, snapshot.status())
                              .Write(-1))
              .ok();
        }
        if (!channel->WriteLine(MakeStateEvent(request.id, *snapshot)
                                    .Write(-1)).ok()) {
          return false;
        }
        if (IsTerminalJobState(snapshot->state)) return true;
        seen = snapshot->state;
      }
    }
  }
  return true;
}

}  // namespace tcm
