#ifndef TCM_SERVE_PROTOCOL_H_
#define TCM_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "api/job.h"
#include "common/json.h"
#include "common/result.h"
#include "serve/job_queue.h"

namespace tcm {

// ---------------------------------------------------------------------------
// Wire protocol of the tcm_serve daemon: newline-delimited JSON over a
// TCP socket (one request or event per line, no external dependencies).
// A client connects, reads the server's "hello" event, then writes
// request objects and reads event objects. The JobSpec payload is the
// public Job API document unchanged — the daemon is the JSON contract of
// api/job.h put on a socket. See README.md ("Serving jobs").
//
// Requests ({"verb": ..., ...}, strict like every JSON surface here —
// unknown keys are errors):
//   submit   {"verb":"submit","spec":{...JobSpec...}[,"id":N][,"wait":B]}
//   status   {"verb":"status","job":N[,"id":N]}
//   cancel   {"verb":"cancel","job":N[,"id":N]}
//   shutdown {"verb":"shutdown"[,"id":N]}   graceful drain, then exit
//   ping     {"verb":"ping"[,"id":N]}
//   stats    {"verb":"stats"[,"id":N]}      live observability snapshot
//
// Events (every one carries "event"; "id" echoes the request's id when
// it had one):
//   hello    {"event":"hello","protocol":2,"max_pending":N}
//   error    {"event":"error","code":"InvalidSpec","message":...}
//   accepted {"event":"accepted","job":N,"state":"queued","pending":P}
//   state    {"event":"state","job":N,"state":...}; terminal states add
//            "report" (succeeded) or "code"/"message" (failed)
//   pong     {"event":"pong","protocol":2,"pending":P,"jobs":J}
//   stats    {"event":"stats","protocol":2,"stats_schema":1,
//             "jobs":{"queued":N,...per state...},"queue_depth":D,
//             "metrics":{"counters":{},"gauges":{},"histograms":{}}}
//            (the daemon's MetricsRegistry snapshot; histograms carry
//            count/sum/min/max and exact nearest-rank p50/p90/p99)
//   draining {"event":"draining"}
//
// A waited submit streams accepted, then one state event per observed
// transition, ending with a terminal state. Error taxonomy codes travel
// as StatusCodeName strings in "code", so a client branches on the same
// names as an in-process caller.
// ---------------------------------------------------------------------------

// Version of the framing described above. Bumped on incompatible
// changes; the JobSpec payload is versioned separately by its own
// "version" key. Version 2 added the "stats" verb and event.
inline constexpr int kServeProtocolVersion = 2;

// Version of the stats event's payload shape (the "jobs" / "queue_depth"
// / "metrics" keys above). Bumped independently of the framing version
// when the snapshot layout changes; clients branch on "stats_schema".
inline constexpr int kStatsSchemaVersion = 1;

// Hard ceiling on one protocol line (either direction). Far above any
// real JobSpec or RunReport, it exists so a peer streaming bytes with
// no newline exhausts this bound (kIoError, connection dropped) instead
// of the process's memory.
inline constexpr size_t kMaxLineBytes = 16u << 20;  // 16 MiB

enum class ServeVerb { kSubmit, kStatus, kCancel, kShutdown, kPing, kStats };

const char* ServeVerbName(ServeVerb verb);

struct ServeRequest {
  ServeVerb verb = ServeVerb::kPing;
  std::optional<uint64_t> id;   // client correlation id, echoed in events
  std::optional<uint64_t> job;  // status / cancel target
  std::optional<JobSpec> spec;  // submit payload
  bool wait = true;             // submit: stream events to terminal state

  // Strict parse of one request line. Malformed JSON is
  // kInvalidArgument; a structurally valid request with a bad JobSpec
  // fails with the spec's own taxonomy code (kInvalidSpec /
  // kUnknownAlgorithm), which the server echoes over the wire.
  static Result<ServeRequest> FromJsonText(std::string_view line);

  JsonValue ToJson() const;
  std::string ToJsonText() const;  // compact single line
};

// Event builders (server side; exposed for tests and embedders).
JsonValue MakeHelloEvent(size_t max_pending);
JsonValue MakeErrorEvent(const std::optional<uint64_t>& id,
                         const Status& status);
JsonValue MakeAcceptedEvent(const std::optional<uint64_t>& id, uint64_t job,
                            size_t pending);
JsonValue MakeStateEvent(const std::optional<uint64_t>& id,
                         const JobSnapshot& snapshot);
JsonValue MakePongEvent(const std::optional<uint64_t>& id, size_t pending,
                        size_t total_jobs);
// `counts` is the queue's jobs-by-state tally; `metrics` the
// MetricsRegistry snapshot (SnapshotJson()), moved into the event.
JsonValue MakeStatsEvent(const std::optional<uint64_t>& id,
                         const JobStateCounts& counts, size_t queue_depth,
                         JsonValue metrics);
JsonValue MakeDrainingEvent(const std::optional<uint64_t>& id);

// ---------------------------------------------------------------------------
// LineChannel: blocking newline-delimited IO over a connected socket fd,
// the transport both ends of the protocol share. Owns the fd.
// ---------------------------------------------------------------------------
class LineChannel {
 public:
  // Takes ownership of `fd` (-1 constructs an invalid channel).
  explicit LineChannel(int fd = -1);
  ~LineChannel();

  LineChannel(LineChannel&& other) noexcept;
  LineChannel& operator=(LineChannel&& other) noexcept;
  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Writes `line` plus a trailing newline, looping until every byte is
  // sent. kIoError when the peer is gone. `line` must not itself contain
  // a newline (that would frame two messages).
  Status WriteLine(const std::string& line);

  // Sends every byte of `bytes` unframed (the HTTP transport; responses
  // are not newline-delimited). kIoError when the peer is gone.
  Status WriteAll(std::string_view bytes);

  // Reads up to the next newline (stripped from the result). kIoError on
  // socket errors and at end of stream.
  Result<std::string> ReadLine();

  // Reads up to `size` raw bytes, draining any bytes ReadLine buffered
  // past its last returned line first. Returns 0 only at end of stream;
  // kIoError on socket errors (including an expired read deadline).
  // When `timed_out` is non-null it is set to whether the failure was
  // an expired read deadline — a typed signal, so callers never have to
  // infer the condition from the Status message text.
  Result<size_t> ReadRaw(char* buffer, size_t size,
                         bool* timed_out = nullptr);

  // Applies a receive deadline to every subsequent read on this channel:
  // a peer that stays silent for longer than `ms` makes the blocked
  // ReadLine/ReadRaw fail with kIoError naming the timeout, so handler
  // threads cannot be pinned forever by silent clients (slowloris).
  // 0 clears the deadline.
  void SetReadTimeout(int ms);

  // Shuts down the read side only: a ReadLine blocked in another thread
  // wakes with end-of-stream, while writes still flush. This is how the
  // server nudges idle connections during graceful drain without eating
  // their final events.
  void ShutdownRead();

  // Shuts down both directions: queued bytes still flush, then the peer
  // sees end-of-stream. The fd itself stays owned until Close() or
  // destruction, so a concurrent ShutdownRead from another thread can
  // never land on a recycled descriptor. Handlers call this when they
  // are done serving a connection — the peer must observe EOF
  // immediately, not when the connection object is eventually reaped.
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last returned line
};

}  // namespace tcm

#endif  // TCM_SERVE_PROTOCOL_H_
