#include "serve/protocol.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace tcm {
namespace {

Result<ServeVerb> VerbFromName(const std::string& name) {
  if (name == "submit") return ServeVerb::kSubmit;
  if (name == "status") return ServeVerb::kStatus;
  if (name == "cancel") return ServeVerb::kCancel;
  if (name == "shutdown") return ServeVerb::kShutdown;
  if (name == "ping") return ServeVerb::kPing;
  if (name == "stats") return ServeVerb::kStats;
  return Status::InvalidArgument(
      "unknown verb \"" + name +
      "\" (expected submit, status, cancel, shutdown, ping or stats)");
}

JsonValue MakeEvent(const char* event, const std::optional<uint64_t>& id) {
  JsonValue object = JsonValue::MakeObject();
  object.Set("event", event);
  if (id.has_value()) object.Set("id", static_cast<double>(*id));
  return object;
}

}  // namespace

const char* ServeVerbName(ServeVerb verb) {
  switch (verb) {
    case ServeVerb::kSubmit:
      return "submit";
    case ServeVerb::kStatus:
      return "status";
    case ServeVerb::kCancel:
      return "cancel";
    case ServeVerb::kShutdown:
      return "shutdown";
    case ServeVerb::kPing:
      return "ping";
    case ServeVerb::kStats:
      return "stats";
  }
  return "unknown";
}

Result<ServeRequest> ServeRequest::FromJsonText(std::string_view line) {
  TCM_ASSIGN_OR_RETURN(JsonValue json, ParseJson(line));
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  ServeRequest request;
  const JsonValue* verb = json.Find("verb");
  if (verb == nullptr) {
    return Status::InvalidArgument("request is missing \"verb\"");
  }
  TCM_ASSIGN_OR_RETURN(std::string verb_name, verb->GetString());
  TCM_ASSIGN_OR_RETURN(request.verb, VerbFromName(verb_name));

  for (const JsonValue::Member& member : json.members()) {
    const std::string& key = member.first;
    const JsonValue& value = member.second;
    if (key == "verb") continue;
    if (key == "id") {
      TCM_ASSIGN_OR_RETURN(uint64_t id, value.GetUint());
      request.id = id;
      continue;
    }
    if (key == "job") {
      if (request.verb != ServeVerb::kStatus &&
          request.verb != ServeVerb::kCancel) {
        return Status::InvalidArgument("\"job\" only applies to status "
                                       "and cancel requests");
      }
      TCM_ASSIGN_OR_RETURN(uint64_t job, value.GetUint());
      request.job = job;
      continue;
    }
    if (key == "spec") {
      if (request.verb != ServeVerb::kSubmit) {
        return Status::InvalidArgument(
            "\"spec\" only applies to submit requests");
      }
      TCM_ASSIGN_OR_RETURN(request.spec, JobSpec::FromJson(value));
      continue;
    }
    if (key == "wait") {
      if (request.verb != ServeVerb::kSubmit) {
        return Status::InvalidArgument(
            "\"wait\" only applies to submit requests");
      }
      TCM_ASSIGN_OR_RETURN(request.wait, value.GetBool());
      continue;
    }
    return Status::InvalidArgument("unknown request key \"" + key + "\"");
  }

  if (request.verb == ServeVerb::kSubmit && !request.spec.has_value()) {
    return Status::InvalidArgument("submit request is missing \"spec\"");
  }
  if ((request.verb == ServeVerb::kStatus ||
       request.verb == ServeVerb::kCancel) &&
      !request.job.has_value()) {
    return Status::InvalidArgument(
        std::string(ServeVerbName(request.verb)) +
        " request is missing \"job\"");
  }
  return request;
}

JsonValue ServeRequest::ToJson() const {
  JsonValue object = JsonValue::MakeObject();
  object.Set("verb", ServeVerbName(verb));
  if (id.has_value()) object.Set("id", static_cast<double>(*id));
  if (job.has_value()) object.Set("job", static_cast<double>(*job));
  if (spec.has_value()) object.Set("spec", spec->ToJson());
  if (verb == ServeVerb::kSubmit && !wait) object.Set("wait", false);
  return object;
}

std::string ServeRequest::ToJsonText() const { return ToJson().Write(-1); }

JsonValue MakeHelloEvent(size_t max_pending) {
  JsonValue event = MakeEvent("hello", std::nullopt);
  event.Set("protocol", kServeProtocolVersion);
  event.Set("max_pending", max_pending);
  return event;
}

JsonValue MakeErrorEvent(const std::optional<uint64_t>& id,
                         const Status& status) {
  JsonValue event = MakeEvent("error", id);
  event.Set("code", StatusCodeName(status.code()));
  event.Set("message", status.message());
  return event;
}

JsonValue MakeAcceptedEvent(const std::optional<uint64_t>& id, uint64_t job,
                            size_t pending) {
  JsonValue event = MakeEvent("accepted", id);
  event.Set("job", static_cast<double>(job));
  event.Set("state", JobStateName(JobState::kQueued));
  event.Set("pending", pending);
  return event;
}

JsonValue MakeStateEvent(const std::optional<uint64_t>& id,
                         const JobSnapshot& snapshot) {
  JsonValue event = MakeEvent("state", id);
  event.Set("job", static_cast<double>(snapshot.id));
  event.Set("state", JobStateName(snapshot.state));
  if (snapshot.state == JobState::kFailed) {
    event.Set("code", snapshot.error_code);
    event.Set("message", snapshot.error);
  }
  if (snapshot.state == JobState::kSucceeded && snapshot.report != nullptr) {
    event.Set("report", *snapshot.report);
  }
  return event;
}

JsonValue MakePongEvent(const std::optional<uint64_t>& id, size_t pending,
                        size_t total_jobs) {
  JsonValue event = MakeEvent("pong", id);
  event.Set("protocol", kServeProtocolVersion);
  event.Set("pending", pending);
  event.Set("jobs", total_jobs);
  return event;
}

JsonValue MakeStatsEvent(const std::optional<uint64_t>& id,
                         const JobStateCounts& counts, size_t queue_depth,
                         JsonValue metrics) {
  JsonValue event = MakeEvent("stats", id);
  event.Set("protocol", kServeProtocolVersion);
  event.Set("stats_schema", kStatsSchemaVersion);
  JsonValue jobs = JsonValue::MakeObject();
  jobs.Set(JobStateName(JobState::kQueued), counts.queued);
  jobs.Set(JobStateName(JobState::kRunning), counts.running);
  jobs.Set(JobStateName(JobState::kSucceeded), counts.succeeded);
  jobs.Set(JobStateName(JobState::kFailed), counts.failed);
  jobs.Set(JobStateName(JobState::kCancelled), counts.cancelled);
  event.Set("jobs", std::move(jobs));
  event.Set("queue_depth", queue_depth);
  event.Set("metrics", std::move(metrics));
  return event;
}

JsonValue MakeDrainingEvent(const std::optional<uint64_t>& id) {
  return MakeEvent("draining", id);
}

// --------------------------------------------------------------- LineChannel

LineChannel::LineChannel(int fd) : fd_(fd) {
#if !defined(MSG_NOSIGNAL) && defined(SO_NOSIGPIPE)
  // No per-send flag on this platform (macOS/BSD): suppress SIGPIPE at
  // the socket level so a vanished peer surfaces as EPIPE, not a
  // process kill — the library must not depend on the hosting binary
  // ignoring SIGPIPE.
  if (fd_ >= 0) {
    int on = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_NOSIGPIPE, &on, sizeof(on));
  }
#endif
}

LineChannel::~LineChannel() { Close(); }

LineChannel::LineChannel(LineChannel&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

LineChannel& LineChannel::operator=(LineChannel&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Status LineChannel::WriteLine(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  return WriteAll(framed);
}

Status LineChannel::WriteAll(std::string_view bytes) {
  if (fd_ < 0) return Status::IoError("write on closed channel");
  size_t sent = 0;
  while (sent < bytes.size()) {
#ifdef MSG_NOSIGNAL
    // Suppress SIGPIPE so a vanished peer surfaces as EPIPE, not a
    // process kill.
    const int flags = MSG_NOSIGNAL;
#else
    const int flags = 0;
#endif
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> LineChannel::ReadLine() {
  if (fd_ < 0) return Status::IoError("read on closed channel");
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("read timed out (idle connection)");
      }
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    if (buffer_.size() > kMaxLineBytes) {
      buffer_.clear();
      return Status::IoError("line exceeds " +
                             std::to_string(kMaxLineBytes) +
                             " bytes; dropping connection");
    }
    if (n == 0) {
      // Treat a final unterminated line as a message of its own so a
      // peer that writes-then-closes without a trailing newline is
      // still understood.
      if (!buffer_.empty()) {
        std::string line = std::move(buffer_);
        buffer_.clear();
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return line;
      }
      return Status::IoError("connection closed");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<size_t> LineChannel::ReadRaw(char* buffer, size_t size,
                                    bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  if (fd_ < 0) return Status::IoError("read on closed channel");
  if (size == 0) return size_t{0};
  if (!buffer_.empty()) {
    size_t n = std::min(size, buffer_.size());
    std::memcpy(buffer, buffer_.data(), n);
    buffer_.erase(0, n);
    return n;
  }
  while (true) {
    ssize_t n = ::recv(fd_, buffer, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (timed_out != nullptr) *timed_out = true;
        return Status::IoError("read timed out (idle connection)");
      }
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    return static_cast<size_t>(n);
  }
}

void LineChannel::SetReadTimeout(int ms) {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void LineChannel::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void LineChannel::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void LineChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace tcm
