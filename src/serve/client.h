#ifndef TCM_SERVE_CLIENT_H_
#define TCM_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "serve/protocol.h"

namespace tcm {

// Minimal blocking client for the tcm_serve protocol, shared by the
// tcm_submit tool and the integration tests. One instance is one
// connection; requests on it are serialized by the caller (the daemon
// answers a connection's requests in order).
class ServeClient {
 public:
  // Connects and consumes the server's hello event. kIoError when the
  // daemon is not reachable, kInvalidArgument for a non-numeric host,
  // kFailedPrecondition when the peer speaks a different protocol
  // version.
  static Result<ServeClient> Connect(const std::string& host,
                                     uint16_t port);

  ServeClient(ServeClient&&) noexcept = default;
  ServeClient& operator=(ServeClient&&) noexcept = default;

  // Protocol version announced by the server's hello.
  int protocol() const { return protocol_; }

  Status Send(const ServeRequest& request);
  Status Send(const JsonValue& request);
  // Raw line, for probing the server with deliberately malformed input.
  Status SendText(const std::string& line);

  // Next event object from the server. kIoError when the connection is
  // gone, kInvalidArgument when the peer sent a non-JSON line.
  Result<JsonValue> ReadEvent();

  // Submits `spec_json` (a JobSpec document; it is NOT validated client
  // side — the server is the authority) and blocks until the exchange
  // resolves. Returns the terminal "state" event on normal completion,
  // or the "error" event when the server refused the submission; socket
  // failures are the only error Status.
  Result<JsonValue> SubmitAndWait(JsonValue spec_json);

  // Issues the stats verb and returns the server's "stats" event (jobs
  // by state, queue depth, metrics snapshot) — or its "error" event.
  Result<JsonValue> Stats();

 private:
  explicit ServeClient(LineChannel channel)
      : channel_(std::move(channel)) {}

  LineChannel channel_;
  int protocol_ = 0;
};

}  // namespace tcm

#endif  // TCM_SERVE_CLIENT_H_
