#ifndef TCM_SERVE_HTTP_H_
#define TCM_SERVE_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "serve/job_queue.h"
#include "serve/protocol.h"

namespace tcm {

// ---------------------------------------------------------------------------
// HTTP/1.1 front of the tcm_serve daemon: the NDJSON verbs of
// serve/protocol.h mapped 1:1 onto routes, with no external
// dependencies. Served from its own listener (the NDJSON protocol is
// hello-first, so one port cannot carry both), sharing the JobQueue,
// connection table, connection cap and idle timeout with the NDJSON
// path. See README.md ("HTTP serving").
//
//   POST   /jobs       submit; body is the JobSpec JSON document.
//                      202 + accepted event, or with "?wait=1" blocks
//                      and returns 200 + the terminal state event.
//   GET    /jobs/N     status. 200 + state event.
//   DELETE /jobs/N     cancel. 200 + state event (shows whether the
//                      cancel won the race, exactly like the verb).
//   GET    /healthz    ping. 200 + pong event. Never requires auth, so
//                      load balancers can probe liveness.
//   GET    /metricsz   stats. 200 + stats event (jobs by state, queue
//                      depth, MetricsRegistry snapshot).
//
// Response bodies ARE the NDJSON protocol's event objects (accepted /
// state / pong / stats / error), so an HTTP client branches on exactly
// the same documents as a socket client. Request-level failures carry
// the error event with the taxonomy code in "code" and the HTTP status
// from HttpStatusForCode(). There is no shutdown route: shutdown stays
// an NDJSON/signal-only operation.
//
// Auth: when the daemon is started with a bearer token, every route but
// GET /healthz requires "Authorization: Bearer <token>"; a missing or
// wrong token gets 401 and the connection is closed.
//
// Hardening: request head and body sizes are bounded (431 / 413), one
// request must arrive within the request deadline however slowly its
// bytes trickle (408, the slowloris defense), chunked transfer encoding
// is refused (501), and a POST without Content-Length is refused (411).
// Only HTTP/1.0 and HTTP/1.1 are spoken (505 otherwise); keep-alive
// follows the usual defaults (1.1 on, 1.0 off) and the Connection
// header.
// ---------------------------------------------------------------------------

// The one protocol version this front speaks and emits on every
// response status line.
inline constexpr char kHttpVersion[] = "HTTP/1.1";

// Per-request resource bounds (slowloris / memory defense).
struct HttpLimits {
  // Request line + headers together; 431 past the bound.
  size_t max_head_bytes = 64u << 10;
  // Declared Content-Length ceiling; 413 past the bound.
  size_t max_body_bytes = 16u << 20;
  // One whole request (first byte to last body byte) must arrive within
  // this wall-clock budget however slowly bytes trickle in; 408 past
  // it. While a request is in flight the reader re-arms the channel's
  // receive timeout with the remaining budget, so a peer that goes
  // fully silent mid-request cannot pin the handler either. 0 disables
  // the deadline.
  int request_deadline_ms = 0;
  // Receive timeout between requests (the idle keep-alive reap),
  // restored on the channel once each request completes. 0 = none. The
  // server fills this in from ServeOptions::idle_timeout_ms.
  int idle_timeout_ms = 0;
};

// One parsed request. Header names are lower-cased; values are
// whitespace-trimmed.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/jobs/3" (target before '?')
  std::string query;   // "wait=1" (after '?', may be empty)
  int minor_version = 1;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  // First header with this (lower-case) name, or nullptr.
  const std::string* FindHeader(std::string_view name) const;
};

// Maps the error taxonomy onto HTTP response statuses. The README
// mapping table is pinned code-by-code against this function by
// tcm_lint, so the docs cannot drift from the implementation.
int HttpStatusForCode(StatusCode code);

// Canonical reason phrase for every status this front emits.
const char* HttpReasonPhrase(int status);

// Serializes one response: status line, Content-Type/Content-Length/
// Connection headers, any `extra_headers` (full "Name: value" strings),
// then the compact JSON body plus a trailing newline.
std::string WriteHttpResponse(int status, const JsonValue& body,
                              bool keep_alive,
                              const std::vector<std::string>& extra_headers =
                                  {});

// Incremental request reader for one connection. Owns the leftover
// bytes between pipelined requests; the channel's reads must go through
// one reader for the connection's lifetime.
class HttpConnectionReader {
 public:
  enum class Outcome {
    kRequest,  // `request` is valid
    kClosed,   // clean end of stream (or idle timeout between requests)
    kError,    // send `error_status` with `error` and close
  };

  struct ReadResult {
    Outcome outcome = Outcome::kClosed;
    HttpRequest request;
    int error_status = 0;
    Status error;  // taxonomy-coded cause, the error event's payload
  };

  HttpConnectionReader(LineChannel* channel, HttpLimits limits)
      : channel_(channel), limits_(limits) {}

  // Blocks until one whole request arrived (head + declared body) or
  // the connection died / misbehaved.
  ReadResult Read();

 private:
  // Appends more bytes to buffer_. Returns false at end of stream or
  // error; `timed_out` distinguishes an expired read deadline.
  bool FillMore(bool* timed_out);

  LineChannel* channel_;
  HttpLimits limits_;
  std::string buffer_;
};

// Everything one HTTP connection handler needs besides the channel.
struct HttpFrontOptions {
  std::string auth_token;  // empty = unauthenticated front
  HttpLimits limits;
};

// Serves HTTP requests on `channel` until the peer closes, a limit
// trips, or keep-alive ends. `queue` is the same JobQueue the NDJSON
// protocol submits into, so both fronts observe one job namespace.
void ServeHttpConnection(LineChannel* channel, JobQueue* queue,
                         const HttpFrontOptions& options);

}  // namespace tcm

#endif  // TCM_SERVE_HTTP_H_
