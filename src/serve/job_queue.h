#ifndef TCM_SERVE_JOB_QUEUE_H_
#define TCM_SERVE_JOB_QUEUE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "api/job.h"
#include "common/json.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "engine/thread_pool.h"

namespace tcm {

// Lifecycle of a served job. kQueued and kRunning are transient; the
// other three are terminal and never change again.
enum class JobState {
  kQueued,
  kRunning,
  kSucceeded,
  kFailed,
  kCancelled,
};

// Stable lower-case wire name ("queued", "running", ...).
const char* JobStateName(JobState state);

bool IsTerminalJobState(JobState state);

// Point-in-time copy of one job's externally visible state. error_code /
// error are filled for kFailed (error_code is the StatusCodeName of the
// failure, e.g. "IoError"); report holds the final RunReport JSON for
// kSucceeded. Copies are cheap — the report is shared, not duplicated.
struct JobSnapshot {
  uint64_t id = 0;
  JobState state = JobState::kQueued;
  std::string error_code;
  std::string error;
  std::shared_ptr<const JsonValue> report;
};

// Jobs-by-state tally over every job the queue has ever seen — the
// "jobs" object of the serve stats event. Taken atomically, so the five
// fields sum to the total submission count.
struct JobStateCounts {
  size_t queued = 0;
  size_t running = 0;
  size_t succeeded = 0;
  size_t failed = 0;
  size_t cancelled = 0;
};

// Bounded in-process job queue over a shared ThreadPool: the execution
// core of the tcm_serve daemon, usable on its own by embedders. Submit
// assigns a monotonically increasing job id and hands the JobSpec to the
// pool; jobs run through the public RunJob facade, so every execution
// mode and error-taxonomy code behaves exactly as it does in-process.
//
// Backpressure: at most `max_pending` jobs may be queued or running at
// once; Submit past the bound fails with kFailedPrecondition instead of
// buffering without limit.
//
// Retention: terminal jobs (succeeded / failed / cancelled) are kept for
// status queries up to `max_terminal_jobs`; past the cap the oldest-
// completed record is evicted (serve.jobs_evicted counts them). Queries
// for an evicted id fail with kFailedPrecondition naming the eviction —
// distinct from the kNotFound of an id that was never issued — so
// clients can tell "poll sooner / raise the cap" apart from "wrong id".
// A cap of 0 means unbounded retention for the queue's lifetime (the
// embedder default; the tcm_serve daemon bounds it).
//
// Observability: every transition publishes into
// MetricsRegistry::Global() under the serve.* names (jobs_submitted /
// jobs_rejected / jobs_succeeded / jobs_failed / jobs_cancelled
// counters, queue_depth and jobs_running gauges, rows_processed counter,
// job_latency_seconds histogram) — the payload behind the daemon's
// `stats` verb.
//
// Thread safety: every method may be called from any thread. The pool
// must outlive the queue and must not be Shutdown() before Drain()
// returns.
class JobQueue {
 public:
  // `pool` is borrowed, not owned. `max_terminal_jobs` caps retained
  // terminal records (0 = keep all).
  JobQueue(ThreadPool* pool, size_t max_pending,
           size_t max_terminal_jobs = 0);

  // Drains before destruction so no worker task outlives the queue.
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  // Enqueues the job and returns its id. kFailedPrecondition when the
  // queue is full or draining. The spec is validated by RunJob on a pool
  // worker, so spec errors surface as a kFailed snapshot, not here.
  Result<uint64_t> Submit(JobSpec spec) TCM_EXCLUDES(mutex_);

  // kNotFound for an id never returned by Submit; kFailedPrecondition
  // for one whose terminal record was evicted by the retention cap.
  Result<JobSnapshot> Status(uint64_t job_id) const TCM_EXCLUDES(mutex_);

  // Best-effort cancellation: a kQueued job transitions to kCancelled
  // and never runs; a running or already-terminal job is left untouched.
  // Either way the returned snapshot shows the job's resulting state, so
  // callers observe whether the cancel won the race. kNotFound for an
  // unknown id.
  Result<JobSnapshot> Cancel(uint64_t job_id) TCM_EXCLUDES(mutex_);

  // Blocks until the job's state differs from `seen`, then returns the
  // new snapshot (immediately when it already differs). Terminal states
  // never change, so waiting on one returns only through a caller bug —
  // pass the state last observed. kNotFound for an unknown id.
  Result<JobSnapshot> WaitForChange(uint64_t job_id, JobState seen) const
      TCM_EXCLUDES(mutex_);

  // Queued + running jobs right now.
  size_t pending() const TCM_EXCLUDES(mutex_);

  // Jobs ever submitted (any state).
  size_t total_jobs() const TCM_EXCLUDES(mutex_);

  // One consistent jobs-by-state tally (stats verb payload).
  JobStateCounts StateCounts() const TCM_EXCLUDES(mutex_);

  // Rejects all further Submits from this point on without blocking:
  // the instant half of shutdown, safe to call from a connection
  // handler. Idempotent.
  void CloseSubmissions() TCM_EXCLUDES(mutex_);

  // CloseSubmissions() plus blocking until every queued or running job
  // reaches a terminal state: the graceful-drain half of daemon
  // shutdown. Idempotent.
  void Drain() TCM_EXCLUDES(mutex_);

 private:
  // One job's record. The whole struct is guarded by the owning queue's
  // mutex_ — records are only reached through jobs_ (or a shared_ptr
  // copied out of it), and every reader/writer holds the lock. That
  // discipline is stated here and checked at the access sites of the
  // queue's own members; the analysis cannot attach a member-of-another-
  // object capability to a nested struct's fields.
  struct Record {
    uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::string error_code;
    std::string error;
    std::shared_ptr<const JsonValue> report;
  };

  JobSnapshot SnapshotLocked(const Record& record) const
      TCM_REQUIRES(mutex_);
  void Execute(const std::shared_ptr<Record>& record) TCM_EXCLUDES(mutex_);
  // Records `id` as terminal (in completion order) and evicts the
  // oldest-completed records past the retention cap.
  void MarkTerminalLocked(uint64_t id) TCM_REQUIRES(mutex_);
  // The structured error for a lookup that missed jobs_: distinguishes
  // an evicted id (< next_id_) from one never issued.
  ::tcm::Status LookupErrorLocked(uint64_t job_id) const
      TCM_REQUIRES(mutex_);

  ThreadPool* pool_;
  const size_t max_pending_;
  const size_t max_terminal_;  // 0 = unbounded retention

  mutable Mutex mutex_;
  mutable CondVar changed_;  // any state transition
  bool draining_ TCM_GUARDED_BY(mutex_) = false;
  uint64_t next_id_ TCM_GUARDED_BY(mutex_) = 1;
  size_t active_ TCM_GUARDED_BY(mutex_) = 0;  // queued + running
  // Pool tasks submitted but not yet entered. Distinct from active_: a
  // job cancelled while queued leaves active_ immediately, but its pool
  // task (which captures this queue) still sits in the pool until a
  // worker pops it — Drain() must outlast that task too, or destroying
  // the queue after Drain() would leave the task dangling.
  size_t tasks_in_pool_ TCM_GUARDED_BY(mutex_) = 0;
  size_t running_ TCM_GUARDED_BY(mutex_) = 0;
  std::map<uint64_t, std::shared_ptr<Record>> jobs_ TCM_GUARDED_BY(mutex_);
  // Terminal job ids in completion order: the eviction queue. Its front
  // is always the oldest-completed record still in jobs_.
  std::deque<uint64_t> terminal_order_ TCM_GUARDED_BY(mutex_);
  // Lifetime tallies, maintained at every transition so StateCounts and
  // total_jobs keep their "every job ever seen" meaning after eviction
  // removes records from jobs_.
  uint64_t total_submitted_ TCM_GUARDED_BY(mutex_) = 0;
  JobStateCounts counts_ TCM_GUARDED_BY(mutex_);
};

}  // namespace tcm

#endif  // TCM_SERVE_JOB_QUEUE_H_
