#include "serve/job_queue.h"

#include <exception>
#include <string>
#include <utility>

#include "api/report.h"
#include "api/runner.h"
#include "common/check.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace tcm {
namespace {

// The registry has its own lock, acquired strictly after the queue's
// (never the reverse), so publishing from under mutex_ cannot deadlock.
MetricsRegistry& Metrics() { return MetricsRegistry::Global(); }

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kSucceeded:
      return "succeeded";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool IsTerminalJobState(JobState state) {
  return state == JobState::kSucceeded || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

JobQueue::JobQueue(ThreadPool* pool, size_t max_pending,
                   size_t max_terminal_jobs)
    : pool_(pool),
      max_pending_(max_pending == 0 ? 1 : max_pending),
      max_terminal_(max_terminal_jobs) {
  TCM_CHECK(pool != nullptr) << "JobQueue requires a ThreadPool";
}

JobQueue::~JobQueue() { Drain(); }

JobSnapshot JobQueue::SnapshotLocked(const Record& record) const {
  JobSnapshot snapshot;
  snapshot.id = record.id;
  snapshot.state = record.state;
  snapshot.error_code = record.error_code;
  snapshot.error = record.error;
  snapshot.report = record.report;
  return snapshot;
}

Result<uint64_t> JobQueue::Submit(JobSpec spec) {
  std::shared_ptr<Record> record;
  {
    MutexLock lock(mutex_);
    if (draining_) {
      Metrics().IncrementCounter("serve.jobs_rejected");
      return Status::FailedPrecondition(
          "server is draining and no longer accepts jobs");
    }
    if (active_ >= max_pending_) {
      Metrics().IncrementCounter("serve.jobs_rejected");
      return Status::FailedPrecondition(
          "job queue is full (" + std::to_string(active_) + " of " +
          std::to_string(max_pending_) + " slots pending); retry later");
    }
    record = std::make_shared<Record>();
    record->id = next_id_++;
    record->spec = std::move(spec);
    jobs_.emplace(record->id, record);
    ++active_;
    ++tasks_in_pool_;
    ++total_submitted_;
    ++counts_.queued;
    Metrics().IncrementCounter("serve.jobs_submitted");
    Metrics().SetGauge("serve.queue_depth",
                       static_cast<double>(active_ - running_));
  }
  // The future is intentionally dropped: completion is observed through
  // WaitForChange, and a packaged_task future does not block on destroy.
  pool_->Submit([this, record]() { Execute(record); });
  return record->id;
}

void JobQueue::Execute(const std::shared_ptr<Record>& record) {
  JobSpec spec;
  {
    MutexLock lock(mutex_);
    TCM_CHECK(tasks_in_pool_ > 0) << "task entered with no pool count";
    --tasks_in_pool_;
    if (record->state != JobState::kQueued) {  // cancelled in queue
      changed_.NotifyAll();  // Drain may be waiting on tasks_in_pool_
      return;
    }
    record->state = JobState::kRunning;
    ++running_;
    TCM_CHECK(counts_.queued > 0) << "job started with no queued count";
    --counts_.queued;
    ++counts_.running;
    Metrics().SetGauge("serve.jobs_running", static_cast<double>(running_));
    Metrics().SetGauge("serve.queue_depth",
                       static_cast<double>(active_ - running_));
    // Move, don't copy: a spec can carry a large inline dataset, and a
    // copy here would both stall every queue operation for its duration
    // and stay pinned in jobs_ after the job is done. The record is
    // never executed twice, so nothing reads the spec again.
    spec = std::move(record->spec);
    changed_.NotifyAll();
  }

  // The library's public surface reports through Status, but a job can
  // still throw (std::bad_alloc on a huge input, a third-party
  // registered algorithm). The pool's packaged_task would capture the
  // exception into a future nobody holds — the record would stay
  // kRunning forever and Drain() would never return — so convert to the
  // taxonomy here instead.
  WallTimer job_timer;
  Result<RunReport> outcome = Status::Internal("unreachable");
  try {
    outcome = RunJob(spec);
  } catch (const std::exception& error) {
    outcome = Status::Internal(std::string("job threw: ") + error.what());
  } catch (...) {
    outcome = Status::Internal("job threw a non-standard exception");
  }
  const double job_seconds = job_timer.ElapsedSeconds();

  {
    MutexLock lock(mutex_);
    TCM_CHECK(counts_.running > 0) << "job finished with no running count";
    --counts_.running;
    if (outcome.ok()) {
      record->state = JobState::kSucceeded;
      ++counts_.succeeded;
      // The report JSON never embeds the in-memory release dataset, so
      // the retained document stays small even for large jobs.
      record->report =
          std::make_shared<const JsonValue>(outcome->ToJson());
      Metrics().IncrementCounter("serve.jobs_succeeded");
      Metrics().IncrementCounter("serve.rows_processed", outcome->rows);
      if (job_seconds > 0.0) {
        Metrics().SetGauge("serve.last_job_rows_per_second",
                           static_cast<double>(outcome->rows) / job_seconds);
      }
    } else {
      record->state = JobState::kFailed;
      record->error_code = StatusCodeName(outcome.status().code());
      record->error = outcome.status().message();
      ++counts_.failed;
      Metrics().IncrementCounter("serve.jobs_failed");
    }
    MarkTerminalLocked(record->id);
    Metrics().Observe("serve.job_latency_seconds", job_seconds);
    TCM_CHECK(active_ > 0) << "job finished with no active count";
    --active_;
    TCM_CHECK(running_ > 0) << "job finished with no running count";
    --running_;
    Metrics().SetGauge("serve.jobs_running", static_cast<double>(running_));
    Metrics().SetGauge("serve.queue_depth",
                       static_cast<double>(active_ - running_));
    changed_.NotifyAll();
  }
}

void JobQueue::MarkTerminalLocked(uint64_t id) {
  terminal_order_.push_back(id);
  if (max_terminal_ == 0) return;
  while (terminal_order_.size() > max_terminal_) {
    uint64_t evict = terminal_order_.front();
    terminal_order_.pop_front();
    jobs_.erase(evict);
    Metrics().IncrementCounter("serve.jobs_evicted");
  }
}

Status JobQueue::LookupErrorLocked(uint64_t job_id) const {
  if (job_id >= 1 && job_id < next_id_) {
    // The id was issued, so its record can only be gone by eviction.
    return Status::FailedPrecondition(
        "job " + std::to_string(job_id) +
        " finished but its record was evicted (terminal-job retention "
        "cap " + std::to_string(max_terminal_) + "); poll sooner or "
        "raise the cap");
  }
  return Status::NotFound("no job with id " + std::to_string(job_id));
}

Result<JobSnapshot> JobQueue::Status(uint64_t job_id) const {
  MutexLock lock(mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return LookupErrorLocked(job_id);
  return SnapshotLocked(*it->second);
}

Result<JobSnapshot> JobQueue::Cancel(uint64_t job_id) {
  MutexLock lock(mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return LookupErrorLocked(job_id);
  // Keep the record alive past MarkTerminalLocked, which may evict this
  // very id from jobs_ when the retention cap is tight.
  const std::shared_ptr<Record> kept = it->second;
  Record& record = *kept;
  if (record.state == JobState::kQueued) {
    record.state = JobState::kCancelled;
    // Release the payload like Execute does for run jobs — a cancelled
    // spec (possibly carrying an inline dataset) must not stay pinned
    // in the retained record.
    record.spec = JobSpec();
    TCM_CHECK(active_ > 0) << "queued job with no active count";
    --active_;
    TCM_CHECK(counts_.queued > 0) << "cancelled job with no queued count";
    --counts_.queued;
    ++counts_.cancelled;
    MarkTerminalLocked(record.id);
    Metrics().IncrementCounter("serve.jobs_cancelled");
    Metrics().SetGauge("serve.queue_depth",
                       static_cast<double>(active_ - running_));
    changed_.NotifyAll();
  }
  return SnapshotLocked(record);
}

Result<JobSnapshot> JobQueue::WaitForChange(uint64_t job_id,
                                            JobState seen) const {
  MutexLock lock(mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return LookupErrorLocked(job_id);
  // The shared_ptr keeps the record alive across the wait even if the
  // retention cap evicts it from jobs_ mid-wait; the caller still gets
  // the terminal snapshot it was waiting for.
  const std::shared_ptr<Record> record = it->second;
  while (record->state == seen) changed_.Wait(lock);
  return SnapshotLocked(*record);
}

size_t JobQueue::pending() const {
  MutexLock lock(mutex_);
  return active_;
}

size_t JobQueue::total_jobs() const {
  MutexLock lock(mutex_);
  return total_submitted_;
}

JobStateCounts JobQueue::StateCounts() const {
  // Maintained at every transition rather than recounted from jobs_, so
  // the "every job ever seen" meaning survives retention eviction.
  MutexLock lock(mutex_);
  return counts_;
}

void JobQueue::CloseSubmissions() {
  MutexLock lock(mutex_);
  draining_ = true;
}

void JobQueue::Drain() {
  MutexLock lock(mutex_);
  draining_ = true;
  // tasks_in_pool_ too: a task for a cancelled-while-queued job still
  // captures this queue and must have entered (and bounced off) before
  // the queue can be destroyed.
  while (active_ != 0 || tasks_in_pool_ != 0) changed_.Wait(lock);
}

}  // namespace tcm
