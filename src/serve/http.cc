#include "serve/http.h"

#include <cctype>
#include <charconv>
#include <chrono>
#include <cstring>
#include <optional>
#include <system_error>

#include "api/job.h"
#include "obs/metrics.h"

namespace tcm {
namespace {

using SteadyClock = std::chrono::steady_clock;

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

// RFC 9110 token characters, the charset of methods and header names.
bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c)) != 0) return true;
  return std::strchr("!#$%&'*+-.^_`|~", c) != nullptr;
}

bool IsToken(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!IsTokenChar(c)) return false;
  }
  return true;
}

// True when the "wait" query parameter asks for a blocking submit
// ("wait", "wait=1" or "wait=true"; anything else is off).
bool QueryWantsWait(std::string_view query) {
  while (!query.empty()) {
    size_t amp = query.find('&');
    std::string_view param = query.substr(0, amp);
    if (param == "wait" || param == "wait=1" || param == "wait=true") {
      return true;
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return false;
}

// Constant-time string equality for secrets: examines every byte of the
// candidate (cycling over the expected value, so the loop length depends
// only on attacker-supplied input) and folds the verdict into one
// accumulator — no data-dependent early exit for response timing to
// leak the matched prefix or the secret's length.
bool ConstantTimeEquals(std::string_view candidate,
                        std::string_view expected) {
  unsigned char diff = candidate.size() == expected.size() ? 0 : 1;
  for (size_t i = 0; i < candidate.size(); ++i) {
    const char against =
        expected.empty() ? '\0' : expected[i % expected.size()];
    diff |= static_cast<unsigned char>(
        static_cast<unsigned char>(candidate[i]) ^
        static_cast<unsigned char>(against));
  }
  return diff == 0;
}

// Strict non-negative decimal parse for Content-Length and /jobs/N ids.
std::optional<uint64_t> ParseDecimal(std::string_view text) {
  if (text.empty() || text.size() > 19) return std::nullopt;
  uint64_t value = 0;
  auto result = std::from_chars(text.data(), text.data() + text.size(),
                                value, 10);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& header : headers) {
    if (header.first == name) return &header.second;
  }
  return nullptr;
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kInternal:
      return 500;
    case StatusCode::kIoError:
      return 500;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kInvalidSpec:
      return 422;
    case StatusCode::kUnknownAlgorithm:
      return 422;
    case StatusCode::kPrivacyViolation:
      return 500;
  }
  return 500;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 100:
      return "Continue";
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 411:
      return "Length Required";
    case 413:
      return "Content Too Large";
    case 422:
      return "Unprocessable Content";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return "Unknown";
  }
}

std::string WriteHttpResponse(int status, const JsonValue& body,
                              bool keep_alive,
                              const std::vector<std::string>& extra_headers) {
  std::string payload = body.Write(-1);
  payload.push_back('\n');

  std::string out(kHttpVersion);
  out += ' ';
  out += std::to_string(status);
  out += ' ';
  out += HttpReasonPhrase(status);
  out += "\r\nContent-Type: application/json\r\nContent-Length: ";
  out += std::to_string(payload.size());
  out += "\r\n";
  for (const std::string& header : extra_headers) {
    out += header;
    out += "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += payload;
  return out;
}

// ------------------------------------------------------ HttpConnectionReader

bool HttpConnectionReader::FillMore(bool* timed_out) {
  char chunk[4096];
  auto n = channel_->ReadRaw(chunk, sizeof(chunk), timed_out);
  if (!n.ok()) return false;
  if (*n == 0) return false;  // end of stream
  buffer_.append(chunk, *n);
  return true;
}

HttpConnectionReader::ReadResult HttpConnectionReader::Read() {
  ReadResult result;
  const bool deadline_set = limits_.request_deadline_ms > 0;
  // The deadline clock starts at the first byte of this request, not at
  // Read() entry: an idle keep-alive connection is the previous
  // request's business (the idle timeout reaps it), while a
  // started-but-trickling request is this one's. Between requests the
  // channel waits under the idle timeout; once a request is in flight
  // every read is re-armed with the remaining deadline budget, so a
  // peer that goes silent mid-request wakes the handler in time to
  // answer 408 instead of pinning it forever.
  std::optional<SteadyClock::time_point> deadline;
  channel_->SetReadTimeout(limits_.idle_timeout_ms);

  auto fail = [&result](int status, Status error) -> ReadResult& {
    result.outcome = Outcome::kError;
    result.error_status = status;
    result.error = std::move(error);
    return result;
  };
  auto past_deadline = [&]() {
    return deadline.has_value() && SteadyClock::now() > *deadline;
  };
  auto arm_read_timeout = [&]() {
    if (!deadline.has_value()) return;
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                         *deadline - SteadyClock::now())
                         .count();
    channel_->SetReadTimeout(
        static_cast<int>(remaining < 1 ? 1 : remaining));
  };

  // Phase 1: accumulate until the blank line ending the head.
  size_t head_end = std::string::npos;
  size_t separator = 0;
  while (true) {
    if (!buffer_.empty() && deadline_set && !deadline.has_value()) {
      deadline = SteadyClock::now() +
                 std::chrono::milliseconds(limits_.request_deadline_ms);
    }
    arm_read_timeout();
    // Both separators are searched and the EARLIER boundary wins: a
    // bare-LF head followed in the same buffer by pipelined CRLF data
    // must end at its own blank line, not at the later CRLF one (which
    // would swallow the next request into this head).
    const size_t crlf = buffer_.find("\r\n\r\n");
    const size_t bare = buffer_.find("\n\n");  // tolerate bare-LF clients
    if (crlf != std::string::npos &&
        (bare == std::string::npos || crlf < bare)) {
      head_end = crlf;
      separator = 4;
    } else {
      head_end = bare;
      separator = 2;
    }
    if (head_end != std::string::npos) break;
    if (buffer_.size() > limits_.max_head_bytes) {
      return fail(431, Status::InvalidArgument(
                           "request head exceeds " +
                           std::to_string(limits_.max_head_bytes) +
                           " bytes"));
    }
    if (past_deadline()) {
      return fail(408, Status::IoError("request did not complete within " +
                                       std::to_string(
                                           limits_.request_deadline_ms) +
                                       " ms"));
    }
    bool timed_out = false;
    if (!FillMore(&timed_out)) {
      if (buffer_.empty()) return result;  // clean close / idle reap
      if (timed_out || past_deadline()) {
        return fail(408,
                    Status::IoError("request stalled mid-head"));
      }
      return result;  // peer vanished mid-request: nothing to answer
    }
  }
  if (past_deadline()) {
    return fail(408, Status::IoError("request did not complete within " +
                                     std::to_string(
                                         limits_.request_deadline_ms) +
                                     " ms"));
  }
  if (head_end > limits_.max_head_bytes) {
    return fail(431, Status::InvalidArgument(
                         "request head exceeds " +
                         std::to_string(limits_.max_head_bytes) + " bytes"));
  }

  // Phase 2: parse request line + headers.
  std::string_view head(buffer_.data(), head_end);
  size_t line_end = head.find('\n');
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }

  size_t sp1 = request_line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos
                   ? std::string_view::npos
                   : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return fail(400,
                Status::InvalidArgument("malformed HTTP request line"));
  }
  std::string_view method = request_line.substr(0, sp1);
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = request_line.substr(sp2 + 1);
  if (!IsToken(method)) {
    return fail(400, Status::InvalidArgument("malformed HTTP method"));
  }
  if (version == "HTTP/1.1") {
    result.request.minor_version = 1;
  } else if (version == "HTTP/1.0") {
    result.request.minor_version = 0;
  } else {
    return fail(505, Status::InvalidArgument(
                         "only HTTP/1.0 and HTTP/1.1 are supported"));
  }
  if (target.empty() || target.front() != '/') {
    return fail(400, Status::InvalidArgument(
                         "request target must be an absolute path"));
  }
  result.request.method = std::string(method);
  size_t question = target.find('?');
  result.request.path = std::string(target.substr(0, question));
  result.request.query =
      question == std::string_view::npos
          ? std::string()
          : std::string(target.substr(question + 1));

  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view()
                                         : head.substr(line_end + 1);
  while (!rest.empty()) {
    size_t next = rest.find('\n');
    std::string_view line =
        next == std::string_view::npos ? rest : rest.substr(0, next);
    rest = next == std::string_view::npos ? std::string_view()
                                          : rest.substr(next + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') {
      return fail(400, Status::InvalidArgument(
                           "obsolete header line folding is not accepted"));
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return fail(400, Status::InvalidArgument("malformed header line"));
    }
    std::string_view name = line.substr(0, colon);
    if (!IsToken(name)) {
      return fail(400, Status::InvalidArgument("malformed header name"));
    }
    result.request.headers.emplace_back(
        ToLower(name), std::string(Trim(line.substr(colon + 1))));
  }

  // Connection semantics and body framing headers.
  result.request.keep_alive = result.request.minor_version >= 1;
  if (const std::string* connection =
          result.request.FindHeader("connection")) {
    std::string value = ToLower(*connection);
    if (value.find("close") != std::string::npos) {
      result.request.keep_alive = false;
    } else if (value.find("keep-alive") != std::string::npos) {
      result.request.keep_alive = true;
    }
  }
  if (result.request.FindHeader("transfer-encoding") != nullptr) {
    return fail(501, Status::Unimplemented(
                         "chunked transfer encoding is not supported; "
                         "send Content-Length"));
  }
  // Exactly one Content-Length may frame the body. Repeats — even
  // agreeing ones — are rejected outright: a proxy in front of the
  // daemon may frame by a different occurrence, which is the classic
  // request-smuggling split (RFC 9110 §8.6).
  const std::string* length_header = nullptr;
  for (const auto& header : result.request.headers) {
    if (header.first != "content-length") continue;
    if (length_header != nullptr) {
      return fail(400, Status::InvalidArgument(
                           "duplicate Content-Length headers"));
    }
    length_header = &header.second;
  }
  uint64_t content_length = 0;
  if (length_header != nullptr) {
    auto parsed = ParseDecimal(*length_header);
    if (!parsed.has_value()) {
      return fail(400,
                  Status::InvalidArgument("malformed Content-Length"));
    }
    content_length = *parsed;
  } else if (result.request.method == "POST") {
    return fail(411, Status::InvalidArgument(
                         "POST requires a Content-Length header"));
  }
  if (content_length > limits_.max_body_bytes) {
    return fail(413, Status::InvalidArgument(
                         "request body exceeds " +
                         std::to_string(limits_.max_body_bytes) + " bytes"));
  }

  buffer_.erase(0, head_end + separator);

  // Phase 3: the declared body. Honour "Expect: 100-continue" so strict
  // clients start sending.
  if (const std::string* expect = result.request.FindHeader("expect")) {
    if (ToLower(*expect).find("100-continue") != std::string::npos &&
        buffer_.size() < content_length) {
      std::string interim(kHttpVersion);
      interim += " 100 ";
      interim += HttpReasonPhrase(100);
      interim += "\r\n\r\n";
      if (!channel_->WriteAll(interim).ok()) return result;
    }
  }
  while (buffer_.size() < content_length) {
    if (past_deadline()) {
      return fail(408, Status::IoError("request did not complete within " +
                                       std::to_string(
                                           limits_.request_deadline_ms) +
                                       " ms"));
    }
    if (deadline_set && !deadline.has_value()) {
      // A bodyless interval can reach here with no deadline armed yet
      // (the whole head sat in the buffer); arm it for the body.
      deadline = SteadyClock::now() +
                 std::chrono::milliseconds(limits_.request_deadline_ms);
    }
    arm_read_timeout();
    bool timed_out = false;
    if (!FillMore(&timed_out)) {
      if (timed_out) {
        return fail(408, Status::IoError("request stalled mid-body"));
      }
      return result;  // peer vanished mid-request
    }
  }
  result.request.body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);
  result.outcome = Outcome::kRequest;
  return result;
}

// ------------------------------------------------------- request dispatch

namespace {

// Writes one response; the return value is "keep serving this
// connection" (write succeeded and keep-alive stays on).
bool Respond(LineChannel* channel, const HttpRequest& request, int status,
             const JsonValue& body,
             const std::vector<std::string>& extra_headers = {}) {
  return channel
             ->WriteAll(WriteHttpResponse(status, body, request.keep_alive,
                                          extra_headers))
             .ok() &&
         request.keep_alive;
}

bool RespondError(LineChannel* channel, const HttpRequest& request,
                  const Status& status) {
  return Respond(channel, request, HttpStatusForCode(status.code()),
                 MakeErrorEvent(std::nullopt, status));
}

bool RespondMethodNotAllowed(LineChannel* channel,
                             const HttpRequest& request,
                             const std::string& allow) {
  Status status = Status::InvalidArgument(
      "method " + request.method + " is not allowed on " + request.path +
      " (allowed: " + allow + ")");
  return Respond(channel, request, 405, MakeErrorEvent(std::nullopt, status),
                 {"Allow: " + allow});
}

// POST /jobs: the submit verb. 202 + accepted event, or with ?wait=1 a
// blocking 200 + the terminal state event (HTTP carries one response per
// request, so the NDJSON path's intermediate state stream collapses to
// its final element).
bool HandleSubmit(LineChannel* channel, JobQueue* queue,
                  const HttpRequest& request) {
  auto parsed = ParseJson(request.body);
  if (!parsed.ok()) return RespondError(channel, request, parsed.status());
  auto spec = JobSpec::FromJson(*parsed);
  if (!spec.ok()) return RespondError(channel, request, spec.status());
  auto job_id = queue->Submit(std::move(*spec));
  if (!job_id.ok()) return RespondError(channel, request, job_id.status());

  if (!QueryWantsWait(request.query)) {
    return Respond(channel, request, 202,
                   MakeAcceptedEvent(std::nullopt, *job_id,
                                     queue->pending()));
  }
  JobState seen = JobState::kQueued;
  while (true) {
    auto snapshot = queue->WaitForChange(*job_id, seen);
    if (!snapshot.ok()) {
      return RespondError(channel, request, snapshot.status());
    }
    if (IsTerminalJobState(snapshot->state)) {
      return Respond(channel, request, 200,
                     MakeStateEvent(std::nullopt, *snapshot));
    }
    seen = snapshot->state;
  }
}

// GET or DELETE /jobs/N: the status / cancel verbs.
bool HandleJobById(LineChannel* channel, JobQueue* queue,
                   const HttpRequest& request, std::string_view id_text) {
  auto job_id = ParseDecimal(id_text);
  if (!job_id.has_value()) {
    return RespondError(channel, request,
                        Status::InvalidArgument(
                            "job id must be a decimal integer, got \"" +
                            std::string(id_text) + "\""));
  }
  if (request.method != "GET" && request.method != "DELETE") {
    return RespondMethodNotAllowed(channel, request, "GET, DELETE");
  }
  auto snapshot = request.method == "GET" ? queue->Status(*job_id)
                                          : queue->Cancel(*job_id);
  if (!snapshot.ok()) {
    return RespondError(channel, request, snapshot.status());
  }
  return Respond(channel, request, 200,
                 MakeStateEvent(std::nullopt, *snapshot));
}

// Routes one parsed request. Returns "keep serving this connection".
bool HandleHttpRequest(LineChannel* channel, JobQueue* queue,
                       const HttpFrontOptions& options,
                       const HttpRequest& request) {
  MetricsRegistry::Global().IncrementCounter("serve.http_requests");

  // Auth first; only the liveness probe is exempt so load balancers can
  // health-check a token-protected daemon.
  if (!options.auth_token.empty() && request.path != "/healthz") {
    const std::string* auth = request.FindHeader("authorization");
    const std::string expected = "Bearer " + options.auth_token;
    if (auth == nullptr || !ConstantTimeEquals(*auth, expected)) {
      Status status = Status::FailedPrecondition(
          "missing or invalid bearer token");
      Respond(channel, request, 401, MakeErrorEvent(std::nullopt, status),
              {"WWW-Authenticate: Bearer"});
      return false;  // never keep serving an unauthenticated peer
    }
  }

  if (request.path == "/healthz") {
    if (request.method != "GET") {
      return RespondMethodNotAllowed(channel, request, "GET");
    }
    return Respond(channel, request, 200,
                   MakePongEvent(std::nullopt, queue->pending(),
                                 queue->total_jobs()));
  }
  if (request.path == "/metricsz") {
    if (request.method != "GET") {
      return RespondMethodNotAllowed(channel, request, "GET");
    }
    JobStateCounts counts = queue->StateCounts();
    return Respond(channel, request, 200,
                   MakeStatsEvent(std::nullopt, counts, counts.queued,
                                  MetricsRegistry::Global().SnapshotJson()));
  }
  if (request.path == "/jobs") {
    if (request.method != "POST") {
      return RespondMethodNotAllowed(channel, request, "POST");
    }
    return HandleSubmit(channel, queue, request);
  }
  if (request.path.rfind("/jobs/", 0) == 0) {
    return HandleJobById(channel, queue, request,
                         std::string_view(request.path).substr(6));
  }
  return RespondError(channel, request,
                      Status::NotFound("no such route: " + request.method +
                                       " " + request.path));
}

}  // namespace

void ServeHttpConnection(LineChannel* channel, JobQueue* queue,
                         const HttpFrontOptions& options) {
  HttpConnectionReader reader(channel, options.limits);
  while (true) {
    HttpConnectionReader::ReadResult read = reader.Read();
    if (read.outcome == HttpConnectionReader::Outcome::kClosed) return;
    if (read.outcome == HttpConnectionReader::Outcome::kError) {
      MetricsRegistry::Global().IncrementCounter("serve.http_bad_requests");
      // A request-level violation poisons the framing (the offending
      // bytes may still sit in the stream), so answer and close.
      channel->WriteAll(WriteHttpResponse(
          read.error_status, MakeErrorEvent(std::nullopt, read.error),
          /*keep_alive=*/false));
      return;
    }
    if (!HandleHttpRequest(channel, queue, options, read.request)) return;
  }
}

}  // namespace tcm
