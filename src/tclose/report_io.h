#ifndef TCM_TCLOSE_REPORT_IO_H_
#define TCM_TCLOSE_REPORT_IO_H_

#include <string>

#include "common/result.h"
#include "microagg/partition.h"
#include "tclose/anonymizer.h"

namespace tcm {

// Machine-readable serialization of anonymization outcomes, so pipelines
// (CI checks, dashboards) can consume the audit trail without parsing
// logs. The JSON emitted is a flat object of scalars plus the cluster
// size histogram; the release itself travels separately as CSV.

// {"algorithm": "...", "k": ..., "t": ..., "min_cluster_size": ..., ...}
std::string ReportToJson(const AnonymizationResult& result,
                         const AnonymizerOptions& options);

// One line per cluster: "cluster_id<TAB>record_id" pairs; the exact
// partition behind a release, for reproducibility audits.
std::string PartitionToTsv(const Partition& partition);

// Parses PartitionToTsv output back. IoError on malformed input;
// FailedPrecondition if the result is not a valid partition of
// `expected_records` records.
Result<Partition> PartitionFromTsv(const std::string& text,
                                   size_t expected_records);

}  // namespace tcm

#endif  // TCM_TCLOSE_REPORT_IO_H_
