#include "tclose/anonymizer.h"

#include <algorithm>

#include "common/timer.h"
#include "distance/emd.h"
#include "microagg/aggregate.h"
#include "tclose/merge.h"
#include "tclose/tclose_first.h"
#include "utility/sse.h"

namespace tcm {

const char* TCloseAlgorithmName(TCloseAlgorithm algorithm) {
  switch (algorithm) {
    case TCloseAlgorithm::kMicroaggregationMerge:
      return "microaggregation+merge";
    case TCloseAlgorithm::kKAnonymityFirst:
      return "k-anonymity-first";
    case TCloseAlgorithm::kTClosenessFirst:
      return "t-closeness-first";
  }
  return "unknown";
}

Result<AnonymizationResult> Anonymize(const Dataset& data,
                                      const AnonymizerOptions& options) {
  if (data.NumRecords() < 2) {
    return Status::InvalidArgument("need at least 2 records");
  }
  if (data.schema().QuasiIdentifierIndices().empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }
  const auto confidential = data.schema().ConfidentialIndices();
  if (confidential.empty()) {
    return Status::InvalidArgument("dataset has no confidential attribute");
  }
  if (options.confidential_offset >= confidential.size()) {
    return Status::OutOfRange("confidential_offset out of range");
  }
  if (options.k == 0 || options.k > data.NumRecords()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  if (options.t < 0.0) {
    return Status::InvalidArgument("t must be non-negative");
  }

  WallTimer timer;
  QiSpace space(data, options.normalization);
  EmdCalculator emd(data, options.confidential_offset);

  Partition partition;
  MergeStats merge_stats;
  KAnonFirstStats kanon_stats;
  TCloseFirstStats tfirst_stats;
  switch (options.algorithm) {
    case TCloseAlgorithm::kMicroaggregationMerge: {
      TCM_ASSIGN_OR_RETURN(
          partition, MergeTCloseness(space, emd, options.k, options.t,
                                     options.microagg, &merge_stats));
      break;
    }
    case TCloseAlgorithm::kKAnonymityFirst: {
      TCM_ASSIGN_OR_RETURN(
          partition,
          KAnonFirstTCloseness(space, emd, options.k, options.t,
                               options.kanon_first, &kanon_stats));
      break;
    }
    case TCloseAlgorithm::kTClosenessFirst: {
      TCM_ASSIGN_OR_RETURN(partition,
                           TCloseFirstTCloseness(space, emd, options.k,
                                                 options.t, &tfirst_stats));
      break;
    }
  }

  // Optional second pass: make every confidential attribute t-close, not
  // just the steering one.
  std::vector<EmdCalculator> all_emds;
  if (options.enforce_all_confidential && confidential.size() > 1) {
    all_emds.reserve(confidential.size());
    std::vector<const EmdCalculator*> pointers;
    for (size_t offset = 0; offset < confidential.size(); ++offset) {
      all_emds.emplace_back(data, offset);
    }
    for (const EmdCalculator& calculator : all_emds) {
      pointers.push_back(&calculator);
    }
    MergeStats multi_stats;
    TCM_ASSIGN_OR_RETURN(
        partition, MergeUntilTCloseMulti(space, pointers, options.t,
                                         std::move(partition), &multi_stats));
    merge_stats.merges += multi_stats.merges;
  }

  TCM_ASSIGN_OR_RETURN(Dataset anonymized,
                       AggregatePartition(data, partition));

  AnonymizationResult result{std::move(anonymized), Partition{}};
  result.elapsed_seconds = timer.ElapsedSeconds();
  result.min_cluster_size = partition.MinClusterSize();
  result.max_cluster_size = partition.MaxClusterSize();
  result.average_cluster_size = partition.AverageClusterSize();
  for (const Cluster& cluster : partition.clusters) {
    result.max_cluster_emd =
        std::max(result.max_cluster_emd, emd.ClusterEmd(cluster));
    for (const EmdCalculator& calculator : all_emds) {
      result.max_cluster_emd =
          std::max(result.max_cluster_emd, calculator.ClusterEmd(cluster));
    }
  }
  TCM_ASSIGN_OR_RETURN(result.normalized_sse,
                       NormalizedSse(data, result.anonymized));
  result.merges = merge_stats.merges + kanon_stats.merges;
  result.swaps = kanon_stats.swaps;
  result.effective_k = tfirst_stats.effective_k;
  result.partition = std::move(partition);
  return result;
}

}  // namespace tcm
