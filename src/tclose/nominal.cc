#include "tclose/nominal.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "common/check.h"
#include "distance/categorical.h"
#include "distance/emd_bounds.h"

namespace tcm {
namespace {

// Largest-remainder allocation of `total` draws across categories in
// proportion to `remaining` counts, capped by the remaining counts
// themselves (the cap keeps the overall schedule consumable).
std::vector<size_t> QuotaForCluster(const std::vector<size_t>& remaining,
                                    size_t remaining_total, size_t total) {
  const size_t J = remaining.size();
  std::vector<size_t> quota(J, 0);
  std::vector<std::pair<double, size_t>> remainders;  // (-frac, category)
  size_t assigned = 0;
  for (size_t j = 0; j < J; ++j) {
    double exact = static_cast<double>(total) *
                   static_cast<double>(remaining[j]) /
                   static_cast<double>(remaining_total);
    quota[j] = std::min(remaining[j], static_cast<size_t>(exact));
    assigned += quota[j];
    remainders.emplace_back(-(exact - std::floor(exact)), j);
  }
  std::sort(remainders.begin(), remainders.end());
  // Hand out the leftover draws by largest fractional part, skipping
  // exhausted categories; loop twice in case caps bite.
  for (int pass = 0; pass < 2 && assigned < total; ++pass) {
    for (const auto& [unused, j] : remainders) {
      if (assigned >= total) break;
      if (quota[j] < remaining[j]) {
        ++quota[j];
        ++assigned;
      }
    }
  }
  TCM_CHECK_EQ(assigned, total) << "quota allocation infeasible";
  return quota;
}

// Removes and returns the `count` QI-nearest rows to `seed` in `pool`.
std::vector<size_t> TakeNearest(const QiSpace& space, size_t seed,
                                std::vector<size_t>* pool, size_t count) {
  TCM_CHECK_LE(count, pool->size());
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(pool->size());
  for (size_t row : *pool) {
    scored.emplace_back(space.SquaredDistance(row, seed), row);
  }
  std::partial_sort(scored.begin(), scored.begin() + count, scored.end());
  std::vector<size_t> taken;
  taken.reserve(count);
  for (size_t i = 0; i < count; ++i) taken.push_back(scored[i].second);
  // Rebuild the pool without the taken rows.
  std::vector<bool> removed_lookup;
  size_t max_index = 0;
  for (size_t row : *pool) max_index = std::max(max_index, row);
  removed_lookup.assign(max_index + 1, false);
  for (size_t row : taken) removed_lookup[row] = true;
  std::erase_if(*pool, [&](size_t row) { return removed_lookup[row]; });
  return taken;
}

}  // namespace

double ClusterTotalVariation(const std::vector<int32_t>& categories,
                             const std::vector<size_t>& rows) {
  TCM_CHECK(!rows.empty());
  TCM_CHECK(!categories.empty());
  // Dictionary codes from the columnar store are dense non-negative ints:
  // bin them into count vectors and reuse the integer-indexed nominal EMD
  // (no per-code map nodes in the hot loop). Arbitrary codes — negative or
  // wildly sparse — take the original map path.
  int32_t min_code = categories.front();
  int32_t max_code = categories.front();
  for (int32_t code : categories) {
    min_code = std::min(min_code, code);
    max_code = std::max(max_code, code);
  }
  const bool dense =
      min_code >= 0 &&
      static_cast<size_t>(max_code) < 2 * categories.size() + 64;
  if (dense) {
    const size_t universe = static_cast<size_t>(max_code) + 1;
    std::vector<size_t> global = CountCategoryCodes(
        std::span<const int32_t>(categories.data(), categories.size()),
        universe);
    std::vector<size_t> cluster(universe, 0);
    for (size_t row : rows) {
      TCM_CHECK_LT(row, categories.size());
      ++cluster[static_cast<size_t>(categories[row])];
    }
    return NominalCategoricalEmd(global, cluster);
  }
  std::map<int32_t, double> global, cluster;
  for (int32_t code : categories) {
    global[code] += 1.0 / static_cast<double>(categories.size());
  }
  for (size_t row : rows) {
    TCM_CHECK_LT(row, categories.size());
    cluster[categories[row]] += 1.0 / static_cast<double>(rows.size());
  }
  double tv = 0.0;
  for (const auto& [code, p] : global) {
    auto it = cluster.find(code);
    tv += std::fabs(p - (it == cluster.end() ? 0.0 : it->second));
  }
  for (const auto& [code, q] : cluster) {
    if (global.find(code) == global.end()) tv += q;
  }
  return 0.5 * tv;
}

Result<Partition> NominalTCloseFirstPartition(
    const QiSpace& space, const std::vector<int32_t>& categories, size_t k,
    double t, NominalTCloseStats* stats) {
  const size_t n = space.num_records();
  if (categories.size() != n) {
    return Status::InvalidArgument("categories size must equal record count");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > n) return Status::InvalidArgument("k exceeds number of records");
  if (t <= 0.0) {
    return Status::InvalidArgument(
        "t must be positive for nominal t-closeness (TV 0 is a single "
        "cluster)");
  }

  // Dense category index.
  std::map<int32_t, size_t> code_to_index;
  for (int32_t code : categories) {
    code_to_index.emplace(code, code_to_index.size());
  }
  const size_t J = code_to_index.size();

  // s* = max{k, ceil(J / t)}, adjusted so leftovers spread one-per-cluster.
  size_t s = std::max(
      k, static_cast<size_t>(std::ceil(static_cast<double>(J) / t)));
  s = AdjustClusterSizeForRemainder(n, std::min(s, n));
  if (stats != nullptr) {
    stats->effective_k = s;
    stats->num_categories = J;
  }
  if (s >= n) {
    Partition partition;
    Cluster all(n);
    std::iota(all.begin(), all.end(), 0);
    partition.clusters.push_back(std::move(all));
    return partition;
  }

  // Per-category pools of record indices.
  std::vector<std::vector<size_t>> pools(J);
  for (size_t row = 0; row < n; ++row) {
    pools[code_to_index[categories[row]]].push_back(row);
  }
  std::vector<size_t> remaining_per_category(J);
  for (size_t j = 0; j < J; ++j) remaining_per_category[j] = pools[j].size();

  const size_t num_clusters = n / s;
  size_t leftovers = n % s;  // first `leftovers` clusters take s+1 records
  size_t remaining_total = n;

  Partition partition;
  std::vector<size_t> all_remaining(n);
  std::iota(all_remaining.begin(), all_remaining.end(), 0);
  for (size_t c = 0; c < num_clusters; ++c) {
    size_t target = s + (c < leftovers ? 1 : 0);
    // Seed: record farthest from the centroid of the remaining records.
    std::vector<double> centroid = space.Centroid(all_remaining);
    size_t seed = space.FarthestFromPoint(all_remaining, centroid);

    std::vector<size_t> quota =
        QuotaForCluster(remaining_per_category, remaining_total, target);
    Cluster cluster;
    cluster.reserve(target);
    for (size_t j = 0; j < J; ++j) {
      if (quota[j] == 0) continue;
      std::vector<size_t> taken =
          TakeNearest(space, seed, &pools[j], quota[j]);
      remaining_per_category[j] -= quota[j];
      cluster.insert(cluster.end(), taken.begin(), taken.end());
    }
    remaining_total -= target;

    // Update the flat remaining list.
    std::vector<bool> taken_lookup(n, false);
    for (size_t row : cluster) taken_lookup[row] = true;
    std::erase_if(all_remaining,
                  [&](size_t row) { return taken_lookup[row]; });
    partition.clusters.push_back(std::move(cluster));
  }
  TCM_CHECK_EQ(remaining_total, 0u);
  TCM_CHECK(all_remaining.empty());
  return partition;
}

}  // namespace tcm
