#include "tclose/anatomy.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace tcm {

Result<AnatomyRelease> MakeAnatomyRelease(const Dataset& data,
                                          const Partition& partition) {
  TCM_RETURN_IF_ERROR(ValidatePartition(partition, data.NumRecords(), 1));
  std::vector<size_t> qi = data.schema().QuasiIdentifierIndices();
  std::vector<size_t> confidential = data.schema().ConfidentialIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }
  if (confidential.empty()) {
    return Status::InvalidArgument("dataset has no confidential attribute");
  }

  std::vector<size_t> assignment = partition.AssignmentVector();

  // QI table: QIs and kOther attributes (identifiers and confidential
  // values are withheld) plus the group id.
  std::vector<size_t> qi_columns = qi;
  for (size_t col : data.schema().IndicesWithRole(AttributeRole::kOther)) {
    qi_columns.push_back(col);
  }
  std::sort(qi_columns.begin(), qi_columns.end());
  std::vector<Attribute> qi_attrs;
  for (size_t col : qi_columns) qi_attrs.push_back(data.schema().at(col));
  qi_attrs.push_back(
      Attribute{"GROUP_ID", AttributeType::kNumeric, AttributeRole::kOther,
                {}});
  Dataset qi_table{Schema(std::move(qi_attrs))};
  for (size_t row = 0; row < data.NumRecords(); ++row) {
    Record record;
    record.reserve(qi_columns.size() + 1);
    for (size_t col : qi_columns) record.push_back(data.cell(row, col));
    record.push_back(
        Value::Numeric(static_cast<double>(assignment[row])));
    TCM_RETURN_IF_ERROR(qi_table.Append(std::move(record)));
  }

  // Sensitive table: group id + confidential attributes, one row per
  // record, ordered by group so within-group order carries no signal.
  std::vector<Attribute> sensitive_attrs;
  sensitive_attrs.push_back(
      Attribute{"GROUP_ID", AttributeType::kNumeric, AttributeRole::kOther,
                {}});
  for (size_t col : confidential) {
    sensitive_attrs.push_back(data.schema().at(col));
  }
  Dataset sensitive_table{Schema(std::move(sensitive_attrs))};
  for (size_t group = 0; group < partition.clusters.size(); ++group) {
    // Within a group, emit rows in confidential-value order (not record
    // order) so row position does not leak the record identity.
    Cluster sorted_rows = partition.clusters[group];
    std::sort(sorted_rows.begin(), sorted_rows.end(),
              [&](size_t a, size_t b) {
                return data.cell(a, confidential[0]).AsDouble() <
                       data.cell(b, confidential[0]).AsDouble();
              });
    for (size_t row : sorted_rows) {
      Record record;
      record.reserve(confidential.size() + 1);
      record.push_back(Value::Numeric(static_cast<double>(group)));
      for (size_t col : confidential) record.push_back(data.cell(row, col));
      TCM_RETURN_IF_ERROR(sensitive_table.Append(std::move(record)));
    }
  }
  return AnatomyRelease{std::move(qi_table), std::move(sensitive_table)};
}

Result<double> AnatomyAttributeDisclosure(const Dataset& data,
                                          const Partition& partition,
                                          size_t confidential_offset) {
  TCM_RETURN_IF_ERROR(ValidatePartition(partition, data.NumRecords(), 1));
  std::vector<size_t> confidential = data.schema().ConfidentialIndices();
  if (confidential.size() <= confidential_offset) {
    return Status::InvalidArgument("confidential attribute not available");
  }
  size_t col = confidential[confidential_offset];
  double worst = 0.0;
  for (const Cluster& cluster : partition.clusters) {
    std::map<double, size_t> counts;
    for (size_t row : cluster) ++counts[data.cell(row, col).AsDouble()];
    for (const auto& [unused, count] : counts) {
      worst = std::max(worst, static_cast<double>(count) /
                                  static_cast<double>(cluster.size()));
    }
  }
  return worst;
}

}  // namespace tcm
