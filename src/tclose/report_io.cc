#include "tclose/report_io.h"

#include <map>
#include <sstream>

#include "common/strings.h"

namespace tcm {

std::string ReportToJson(const AnonymizationResult& result,
                         const AnonymizerOptions& options) {
  std::ostringstream out;
  out << "{";
  out << "\"algorithm\":\"" << TCloseAlgorithmName(options.algorithm)
      << "\",";
  out << "\"k\":" << options.k << ",";
  out << "\"t\":" << FormatDouble(options.t, 12) << ",";
  out << "\"records\":" << result.anonymized.NumRecords() << ",";
  out << "\"clusters\":" << result.partition.NumClusters() << ",";
  out << "\"min_cluster_size\":" << result.min_cluster_size << ",";
  out << "\"max_cluster_size\":" << result.max_cluster_size << ",";
  out << "\"average_cluster_size\":"
      << FormatDouble(result.average_cluster_size, 12) << ",";
  out << "\"max_cluster_emd\":" << FormatDouble(result.max_cluster_emd, 12)
      << ",";
  out << "\"normalized_sse\":" << FormatDouble(result.normalized_sse, 12)
      << ",";
  out << "\"elapsed_seconds\":" << FormatDouble(result.elapsed_seconds, 12)
      << ",";
  out << "\"merges\":" << result.merges << ",";
  out << "\"swaps\":" << result.swaps << ",";
  out << "\"effective_k\":" << result.effective_k << ",";
  // Cluster size histogram: {"size": count, ...} ordered by size.
  std::map<size_t, size_t> histogram;
  for (const Cluster& cluster : result.partition.clusters) {
    ++histogram[cluster.size()];
  }
  out << "\"cluster_size_histogram\":{";
  bool first = true;
  for (const auto& [size, count] : histogram) {
    if (!first) out << ",";
    first = false;
    out << "\"" << size << "\":" << count;
  }
  out << "}}";
  return out.str();
}

std::string PartitionToTsv(const Partition& partition) {
  std::ostringstream out;
  for (size_t c = 0; c < partition.clusters.size(); ++c) {
    for (size_t row : partition.clusters[c]) {
      out << c << '\t' << row << '\n';
    }
  }
  return out.str();
}

Result<Partition> PartitionFromTsv(const std::string& text,
                                   size_t expected_records) {
  Partition partition;
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    std::vector<std::string> fields = SplitString(line, '\t');
    if (fields.size() != 2) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": expected 2 tab-separated fields");
    }
    double cluster_id = 0, row_id = 0;
    if (!ParseDouble(fields[0], &cluster_id) ||
        !ParseDouble(fields[1], &row_id) || cluster_id < 0 || row_id < 0) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": malformed ids");
    }
    size_t cluster = static_cast<size_t>(cluster_id);
    if (cluster >= partition.clusters.size()) {
      partition.clusters.resize(cluster + 1);
    }
    partition.clusters[cluster].push_back(static_cast<size_t>(row_id));
  }
  TCM_RETURN_IF_ERROR(
      ValidatePartition(partition, expected_records, /*min_cluster_size=*/1));
  return partition;
}

}  // namespace tcm
