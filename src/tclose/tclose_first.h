#ifndef TCM_TCLOSE_TCLOSE_FIRST_H_
#define TCM_TCLOSE_TCLOSE_FIRST_H_

#include "common/result.h"
#include "distance/emd.h"
#include "distance/qi_space.h"
#include "microagg/partition.h"

namespace tcm {

struct TCloseFirstStats {
  size_t effective_k = 0;  // cluster size after Eq. (3) and Eq. (4)
  size_t num_subsets = 0;  // == effective_k
};

// Algorithm 3 (paper Sec. 7), t-closeness-first microaggregation:
//  1. k* = max{k, ceil(n / (2(n-1)t + 1))} (Eq. 3, from Proposition 2),
//     enlarged per Eq. (4) so leftovers do not outnumber clusters.
//  2. Records are split into k* subsets of floor(n/k*) consecutive records
//     in ascending confidential-attribute order; the n mod k* leftover
//     records go to the central subset(s).
//  3. Clusters are grown MDAV-style in QI space, drawing exactly one
//     record (the QI-nearest to the seed) from every subset, plus at most
//     one extra record from an oversized central subset.
// Every cluster holds one record per subset, so Proposition 2 bounds its
// EMD by (n-k*)/(2(n-1)k*) <= t: t-closeness holds by construction and no
// EMD is ever evaluated (the EmdCalculator is used only for ranks).
//
// InvalidArgument if k == 0, k > n or t < 0.
Result<Partition> TCloseFirstTCloseness(const QiSpace& space,
                                        const EmdCalculator& emd, size_t k,
                                        double t,
                                        TCloseFirstStats* stats = nullptr);

// The subset-draw engine behind Algorithm 3, exposed as a building block
// (the SABRE-like baseline reuses it with its own bucket count): splits
// the confidential sort order into `k_star` equal-frequency subsets
// (leftovers to the central subsets) and grows clusters drawing one
// QI-nearest record per subset. `k_star` should already satisfy Eq. (4);
// it is re-adjusted defensively. k_star >= n collapses to one cluster.
Result<Partition> SubsetDrawPartition(const QiSpace& space,
                                      const EmdCalculator& emd,
                                      size_t k_star);

}  // namespace tcm

#endif  // TCM_TCLOSE_TCLOSE_FIRST_H_
