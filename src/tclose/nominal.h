#ifndef TCM_TCLOSE_NOMINAL_H_
#define TCM_TCLOSE_NOMINAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "distance/qi_space.h"
#include "microagg/partition.h"

namespace tcm {

// t-Closeness-first microaggregation for NOMINAL confidential attributes —
// the paper's research-direction item (i): "defining an EMD suitable to
// compare categorical values". For nominal categories the EMD ground
// distance is 1 between any two distinct categories, which makes EMD the
// total variation (TV) distance. A cluster of size s whose per-category
// counts are a largest-remainder rounding of s times the global category
// proportions deviates by less than 1/s per category, so
//   TV <= J / (2s)        (J = number of categories).
// Choosing s* = max{k, ceil(J / t)} therefore leaves TV <= t/2 by the
// bound, with the remaining t/2 as headroom for the drift of drawing
// quotas from the *remaining* records (which keeps the overall allocation
// exactly consumable).
//
// Cluster formation mirrors Algorithm 3: MDAV-style seeds in QI space,
// each cluster drawing its per-category quota as the QI-nearest records
// of that category.

struct NominalTCloseStats {
  size_t effective_k = 0;    // cluster size s*
  size_t num_categories = 0; // J
};

// `categories[row]` is the nominal confidential code of each record
// (codes need not be contiguous). InvalidArgument if sizes mismatch,
// k == 0, k > n, or t <= 0 (a TV of 0 requires releasing one cluster —
// pass t >= J/n instead).
Result<Partition> NominalTCloseFirstPartition(
    const QiSpace& space, const std::vector<int32_t>& categories, size_t k,
    double t, NominalTCloseStats* stats = nullptr);

// TV distance between the category distribution of `rows` and that of the
// whole `categories` vector; the verification counterpart of the above.
double ClusterTotalVariation(const std::vector<int32_t>& categories,
                             const std::vector<size_t>& rows);

}  // namespace tcm

#endif  // TCM_TCLOSE_NOMINAL_H_
