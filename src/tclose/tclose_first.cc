#include "tclose/tclose_first.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "distance/emd_bounds.h"

namespace tcm {
namespace {

// Distributes the n mod k* leftover records over the central subsets.
// Subset 0 is excluded: the pseudo-code's oversize test compares |Si|
// against |S1|, so an extra parked on the first subset could never be
// detected. Returns per-subset sizes.
std::vector<size_t> SubsetSizes(size_t n, size_t k_star) {
  size_t base = n / k_star;
  size_t leftover = n % k_star;
  std::vector<size_t> sizes(k_star, base);
  if (leftover == 0) return sizes;
  TCM_CHECK_GT(k_star, 1u);
  // Candidate subsets ordered by distance to the centre (ties toward the
  // lower index), mirroring the paper's Figs. 3-4.
  std::vector<size_t> candidates;
  for (size_t i = 1; i < k_star; ++i) candidates.push_back(i);
  double centre = (static_cast<double>(k_star) - 1.0) / 2.0;
  std::stable_sort(candidates.begin(), candidates.end(),
                   [centre](size_t a, size_t b) {
                     return std::fabs(static_cast<double>(a) - centre) <
                            std::fabs(static_cast<double>(b) - centre);
                   });
  for (size_t i = 0; i < leftover; ++i) ++sizes[candidates[i]];
  return sizes;
}

// Removes and returns the subset element QI-nearest to `seed`.
size_t TakeClosest(const QiSpace& space, size_t seed,
                   std::vector<size_t>* subset) {
  TCM_CHECK(!subset->empty());
  size_t best_pos = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t pos = 0; pos < subset->size(); ++pos) {
    double dist = space.SquaredDistance((*subset)[pos], seed);
    if (dist < best_dist) {
      best_dist = dist;
      best_pos = pos;
    }
  }
  size_t row = (*subset)[best_pos];
  (*subset)[best_pos] = subset->back();
  subset->pop_back();
  return row;
}

Cluster BuildCluster(const QiSpace& space, size_t seed,
                     std::vector<std::vector<size_t>>* subsets) {
  Cluster cluster;
  bool extra_taken = false;
  for (size_t i = 0; i < subsets->size(); ++i) {
    std::vector<size_t>& subset = (*subsets)[i];
    if (subset.empty()) continue;  // only possible on the final cluster
    cluster.push_back(TakeClosest(space, seed, &subset));
    // Oversized central subset and no extra in this cluster yet: take a
    // second record (paper: "if |Si| > |S1| and |C| = i").
    if (!extra_taken && !subset.empty() &&
        subset.size() > (*subsets)[0].size()) {
      cluster.push_back(TakeClosest(space, seed, &subset));
      extra_taken = true;
    }
  }
  return cluster;
}

std::vector<size_t> Flatten(const std::vector<std::vector<size_t>>& subsets) {
  std::vector<size_t> out;
  for (const auto& subset : subsets) {
    out.insert(out.end(), subset.begin(), subset.end());
  }
  return out;
}

}  // namespace

Result<Partition> TCloseFirstTCloseness(const QiSpace& space,
                                        const EmdCalculator& emd, size_t k,
                                        double t, TCloseFirstStats* stats) {
  const size_t n = space.num_records();
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > n) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds number of records " +
                                   std::to_string(n));
  }
  if (t < 0.0) return Status::InvalidArgument("t must be non-negative");

  size_t k_star = RequiredClusterSize(n, k, t);
  k_star = AdjustClusterSizeForRemainder(n, k_star);
  if (stats != nullptr) {
    stats->effective_k = k_star;
    stats->num_subsets = k_star;
  }
  return SubsetDrawPartition(space, emd, k_star);
}

Result<Partition> SubsetDrawPartition(const QiSpace& space,
                                      const EmdCalculator& emd,
                                      size_t k_star) {
  const size_t n = space.num_records();
  if (k_star == 0) return Status::InvalidArgument("k_star must be positive");
  k_star = AdjustClusterSizeForRemainder(n, std::min(k_star, n));

  Partition partition;
  if (k_star >= n) {
    Cluster all(n);
    std::iota(all.begin(), all.end(), 0);
    partition.clusters.push_back(std::move(all));
    return partition;
  }

  // Records in ascending confidential order, sliced into k* subsets.
  std::vector<size_t> rows_by_rank(n);
  for (size_t row = 0; row < n; ++row) rows_by_rank[emd.RankOf(row)] = row;
  std::vector<size_t> sizes = SubsetSizes(n, k_star);
  std::vector<std::vector<size_t>> subsets(k_star);
  size_t cursor = 0;
  for (size_t i = 0; i < k_star; ++i) {
    subsets[i].assign(rows_by_rank.begin() + cursor,
                      rows_by_rank.begin() + cursor + sizes[i]);
    cursor += sizes[i];
  }
  TCM_CHECK_EQ(cursor, n);

  size_t remaining = n;
  while (remaining > 0) {
    std::vector<size_t> pool = Flatten(subsets);
    std::vector<double> centroid = space.Centroid(pool);
    size_t x0 = space.FarthestFromPoint(pool, centroid);
    Cluster first = BuildCluster(space, x0, &subsets);
    remaining -= first.size();
    partition.clusters.push_back(std::move(first));

    if (remaining > 0) {
      pool = Flatten(subsets);
      const double* x0_point = space.point(x0);
      std::vector<double> x0_coords(x0_point, x0_point + space.num_dims());
      size_t x1 = space.FarthestFromPoint(pool, x0_coords);
      Cluster second = BuildCluster(space, x1, &subsets);
      remaining -= second.size();
      partition.clusters.push_back(std::move(second));
    }
  }
  return partition;
}

}  // namespace tcm
