#ifndef TCM_TCLOSE_MERGE_H_
#define TCM_TCLOSE_MERGE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "distance/emd.h"
#include "distance/qi_space.h"
#include "engine/thread_pool.h"
#include "microagg/microagg.h"
#include "microagg/partition.h"

namespace tcm {

// How the repair pass orders its work.
//
//  * kSequential — the paper's Algorithm 1 loop, one merge at a time over
//    all clusters. Byte-stable: the released partition (and every stat)
//    is the reference the golden tests pin.
//  * kHierarchical — clusters are split into deterministic subtrees that
//    are repaired concurrently on a ThreadPool, then a sequential global
//    tail fixes the residual violations. The subtree layout is a pure
//    function of the cluster count and row total — never of the thread
//    count — so releases are reproducible at any parallelism, but they
//    legitimately differ from the sequential engine's bytes (the property
//    tests prove both satisfy the same k-anonymity/t-closeness verdicts).
enum class MergeStrategy {
  kSequential,
  kHierarchical,
};

// Stable lower-case wire name ("sequential" / "hierarchical").
const char* MergeStrategyName(MergeStrategy strategy);

// Inverse of MergeStrategyName; kInvalidArgument on anything else.
Result<MergeStrategy> ParseMergeStrategy(const std::string& name);

// Statistics reported by the merging loop. The check counters tie out:
// candidate_checks == pruned_checks + exact_checks, where a "check" is
// one cluster-EMD determination (one per initial cluster plus one per
// merge) and "pruned" means the closed-form bounds answered it without an
// exact EMD evaluation.
struct MergeStats {
  size_t merges = 0;        // number of cluster mergers performed
  double final_max_emd = 0; // max per-cluster EMD after the loop (an
                            // upper bound when the last check was pruned)
  size_t num_subtrees = 0;      // hierarchical only; 0 for sequential
  size_t subtree_merges = 0;    // merges inside subtrees
  size_t tail_merges = 0;       // merges in the global tail (sequential:
                                // equals merges)
  size_t candidate_checks = 0;  // cluster-EMD determinations requested
  size_t pruned_checks = 0;     // answered by emd_bounds, no exact EMD
  size_t exact_checks = 0;      // full EMD evaluations
};

// Tuning for MergeUntilTCloseWith.
struct MergeOptions {
  MergeStrategy strategy = MergeStrategy::kSequential;

  // Subtree fan-out target for kHierarchical; ignored (may be null) for
  // kSequential. Null runs the subtrees inline on the caller.
  ThreadPool* pool = nullptr;

  // Answer per-cluster EMD checks from the paper's closed-form bounds
  // when possible: a freshly merged cluster whose mixture upper bound
  // (MixtureEmdUpperBound) already meets t is provably safe, and — in
  // the hierarchical engine only — an initial cluster small enough that
  // MinClusterEmd exceeds t is provably violating; neither needs an
  // exact evaluation. Safe-side pruning never changes which cluster the
  // worst-first scan selects (only values above t compete), so the
  // sequential partition bytes are unchanged; final_max_emd may become
  // an upper bound. Off by default to keep legacy stats bit-stable.
  bool prune = false;

  // Minimum rows a hierarchical subtree must hold; 0 derives the floor
  // from RequiredClusterSize/AdjustClusterSizeForRemainder so each
  // subtree can form several t-close clusters of the paper's minimum
  // size. Ignored by kSequential.
  size_t min_subtree_rows = 0;

  // Cap on concurrent subtrees; 0 = automatic. Ignored by kSequential.
  size_t max_subtrees = 0;
};

// Algorithm 1 (paper Sec. 5), merging phase only: repeatedly merge the
// cluster with the greatest EMD to the whole data set into the cluster
// nearest to it in quasi-identifier (centroid) distance, until every
// cluster satisfies t-closeness. Always terminates: in the worst case all
// records end up in one cluster with EMD 0.
//
// `initial` must be a valid partition of the records of `space`.
Result<Partition> MergeUntilTClose(const QiSpace& space,
                                   const EmdCalculator& emd, double t,
                                   Partition initial,
                                   MergeStats* stats = nullptr);

// Multi-attribute variant: a cluster's violation is its worst EMD across
// several confidential attributes (one calculator each); merging stops
// when every cluster is within t for every attribute. Used to extend the
// single-attribute algorithms to data sets with several confidential
// attributes.
Result<Partition> MergeUntilTCloseMulti(
    const QiSpace& space, const std::vector<const EmdCalculator*>& emds,
    double t, Partition initial, MergeStats* stats = nullptr);

// Full-control variant: everything above plus strategy selection, bound
// pruning and the subtree fan-out. MergeUntilTClose/-Multi delegate here
// with default options (sequential, no pruning).
Result<Partition> MergeUntilTCloseWith(
    const QiSpace& space, const std::vector<const EmdCalculator*>& emds,
    double t, Partition initial, const MergeOptions& options,
    MergeStats* stats = nullptr);

// Full Algorithm 1: standard microaggregation (per `options`) on the
// quasi-identifiers followed by the merging phase.
Result<Partition> MergeTCloseness(const QiSpace& space,
                                  const EmdCalculator& emd, size_t k, double t,
                                  const MicroaggOptions& options = {},
                                  MergeStats* stats = nullptr);

}  // namespace tcm

#endif  // TCM_TCLOSE_MERGE_H_
