#ifndef TCM_TCLOSE_MERGE_H_
#define TCM_TCLOSE_MERGE_H_

#include "common/result.h"
#include "distance/emd.h"
#include "distance/qi_space.h"
#include "microagg/microagg.h"
#include "microagg/partition.h"

namespace tcm {

// Statistics reported by the merging loop.
struct MergeStats {
  size_t merges = 0;        // number of cluster mergers performed
  double final_max_emd = 0; // max per-cluster EMD after the loop
};

// Algorithm 1 (paper Sec. 5), merging phase only: repeatedly merge the
// cluster with the greatest EMD to the whole data set into the cluster
// nearest to it in quasi-identifier (centroid) distance, until every
// cluster satisfies t-closeness. Always terminates: in the worst case all
// records end up in one cluster with EMD 0.
//
// `initial` must be a valid partition of the records of `space`.
Result<Partition> MergeUntilTClose(const QiSpace& space,
                                   const EmdCalculator& emd, double t,
                                   Partition initial,
                                   MergeStats* stats = nullptr);

// Multi-attribute variant: a cluster's violation is its worst EMD across
// several confidential attributes (one calculator each); merging stops
// when every cluster is within t for every attribute. Used to extend the
// single-attribute algorithms to data sets with several confidential
// attributes.
Result<Partition> MergeUntilTCloseMulti(
    const QiSpace& space, const std::vector<const EmdCalculator*>& emds,
    double t, Partition initial, MergeStats* stats = nullptr);

// Full Algorithm 1: standard microaggregation (per `options`) on the
// quasi-identifiers followed by the merging phase.
Result<Partition> MergeTCloseness(const QiSpace& space,
                                  const EmdCalculator& emd, size_t k, double t,
                                  const MicroaggOptions& options = {},
                                  MergeStats* stats = nullptr);

}  // namespace tcm

#endif  // TCM_TCLOSE_MERGE_H_
