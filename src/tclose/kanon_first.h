#ifndef TCM_TCLOSE_KANON_FIRST_H_
#define TCM_TCLOSE_KANON_FIRST_H_

#include "common/result.h"
#include "distance/emd.h"
#include "distance/qi_space.h"
#include "microagg/partition.h"
#include "tclose/merge.h"

namespace tcm {

struct KAnonFirstOptions {
  // When false, the swap refinement inside GenerateCluster is skipped and
  // the algorithm degenerates to plain MDAV-style clustering (used by the
  // swap-policy ablation bench).
  bool enable_swaps = true;
};

struct KAnonFirstStats {
  size_t swaps = 0;            // record swaps performed across all clusters
  size_t swap_candidates = 0;  // candidate records examined
  size_t merges = 0;           // mergers in the Algorithm 1 fallback
  double final_max_emd = 0.0;
};

// Algorithm 2 (paper Sec. 6) as published: MDAV-style cluster generation
// where each cluster of k records is refined — swapping members for nearby
// unclustered records — until its EMD drops to t or candidates run out.
// The result is k-anonymous but NOT guaranteed t-close (the paper notes
// the guarantee fails when the pool empties, typically for the last
// clusters).
Result<Partition> KAnonFirstPartition(const QiSpace& space,
                                      const EmdCalculator& emd, size_t k,
                                      double t,
                                      const KAnonFirstOptions& options = {},
                                      KAnonFirstStats* stats = nullptr);

// Algorithm 2 with the guarantee: uses KAnonFirstPartition as the
// microaggregation step of Algorithm 1 (paper Sec. 6: "use Algorithm 2 as
// the microaggregation function in Algorithm 1"), merging clusters until
// t-closeness holds everywhere.
Result<Partition> KAnonFirstTCloseness(const QiSpace& space,
                                       const EmdCalculator& emd, size_t k,
                                       double t,
                                       const KAnonFirstOptions& options = {},
                                       KAnonFirstStats* stats = nullptr);

}  // namespace tcm

#endif  // TCM_TCLOSE_KANON_FIRST_H_
