#ifndef TCM_TCLOSE_ANONYMIZER_H_
#define TCM_TCLOSE_ANONYMIZER_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"
#include "distance/qi_space.h"
#include "microagg/microagg.h"
#include "microagg/partition.h"
#include "tclose/kanon_first.h"

namespace tcm {

// Which of the paper's three algorithms to run.
enum class TCloseAlgorithm {
  kMicroaggregationMerge,  // Algorithm 1: microaggregate, then merge
  kKAnonymityFirst,        // Algorithm 2 (+ merge fallback for guarantee)
  kTClosenessFirst,        // Algorithm 3: analytic subsets, by construction
};

const char* TCloseAlgorithmName(TCloseAlgorithm algorithm);

struct AnonymizerOptions {
  size_t k = 2;       // minimum cluster size (k-anonymity level)
  double t = 0.25;    // t-closeness level (max per-cluster EMD)
  TCloseAlgorithm algorithm = TCloseAlgorithm::kTClosenessFirst;
  // Algorithm 1 only: which microaggregation builds the initial clusters.
  MicroaggOptions microagg;
  // Algorithm 2 only: swap-refinement policy.
  KAnonFirstOptions kanon_first;
  // QI scaling used for all record distances.
  QiNormalization normalization = QiNormalization::kRange;
  // Which confidential attribute drives t-closeness when several exist.
  size_t confidential_offset = 0;
  // When true and the schema declares several confidential attributes,
  // a multi-attribute merge pass runs after the selected algorithm so
  // that EVERY confidential attribute satisfies t-closeness (the primary
  // algorithm only steers by `confidential_offset`).
  bool enforce_all_confidential = false;
};

// Everything a caller needs to audit a run: the release itself, the
// partition behind it, and privacy/utility/readiness measurements.
struct AnonymizationResult {
  Dataset anonymized;
  Partition partition;

  size_t min_cluster_size = 0;      // k-anonymity level achieved
  size_t max_cluster_size = 0;
  double average_cluster_size = 0.0;
  double max_cluster_emd = 0.0;     // t-closeness level achieved
  double normalized_sse = 0.0;      // paper Eq. 5
  double elapsed_seconds = 0.0;

  // Algorithm-specific diagnostics (0 when not applicable).
  size_t merges = 0;        // Algorithms 1 and 2 (fallback)
  size_t swaps = 0;         // Algorithm 2
  size_t effective_k = 0;   // Algorithm 3's k* after Eqs. (3)-(4)
};

// One-call API over the three algorithms: partitions `data`, aggregates
// the quasi-identifiers, and measures the result.
//
// Requirements: at least one quasi-identifier and one confidential
// attribute, n >= 2, k in [1, n], t >= 0.
Result<AnonymizationResult> Anonymize(const Dataset& data,
                                      const AnonymizerOptions& options);

}  // namespace tcm

#endif  // TCM_TCLOSE_ANONYMIZER_H_
