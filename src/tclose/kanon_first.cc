#include "tclose/kanon_first.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace tcm {
namespace {

// Cluster under refinement: member rows and their confidential ranks, the
// latter kept sorted so EMD evaluations are O(|C|).
struct RefinableCluster {
  std::vector<size_t> rows;
  std::vector<uint32_t> sorted_ranks;
};

RefinableCluster MakeRefinable(const EmdCalculator& emd,
                               std::vector<size_t> rows) {
  RefinableCluster out;
  out.sorted_ranks.reserve(rows.size());
  for (size_t row : rows) out.sorted_ranks.push_back(emd.RankOf(row));
  std::sort(out.sorted_ranks.begin(), out.sorted_ranks.end());
  out.rows = std::move(rows);
  return out;
}

// sorted_ranks with the value at `drop_pos` replaced by `add_rank`,
// keeping the order. O(|ranks|).
std::vector<uint32_t> RanksAfterSwap(const std::vector<uint32_t>& ranks,
                                     size_t drop_pos, uint32_t add_rank) {
  std::vector<uint32_t> out;
  out.reserve(ranks.size());
  bool inserted = false;
  for (size_t i = 0; i < ranks.size(); ++i) {
    if (i == drop_pos) continue;
    if (!inserted && add_rank < ranks[i]) {
      out.push_back(add_rank);
      inserted = true;
    }
    out.push_back(ranks[i]);
  }
  if (!inserted) out.push_back(add_rank);
  return out;
}

// The paper's GenerateCluster: the k pool records nearest to `seed` form
// the cluster; while the cluster's EMD exceeds t, the next-nearest pool
// record y is considered and the member y' whose replacement by y lowers
// EMD most is swapped out (if any improvement). Consumed candidates that
// do not enter the cluster stay available to later clusters (they are only
// removed from this call's local view).
Cluster GenerateCluster(const QiSpace& space, const EmdCalculator& emd,
                        size_t seed, const std::vector<size_t>& pool,
                        size_t k, double t, const KAnonFirstOptions& options,
                        KAnonFirstStats* stats) {
  if (pool.size() < 2 * k) return pool;  // paper: C = X' when |X'| < 2k

  // Pool ordered by QI distance to the seed; the seed itself sorts first.
  std::vector<size_t> order =
      space.NearestToRecord(pool, seed, pool.size());
  RefinableCluster cluster = MakeRefinable(
      emd, std::vector<size_t>(order.begin(), order.begin() + k));
  if (!options.enable_swaps) return std::move(cluster.rows);

  double current_emd = emd.EmdFromSortedRanks(cluster.sorted_ranks);
  for (size_t next = k; next < order.size() && current_emd > t; ++next) {
    size_t y = order[next];
    uint32_t y_rank = emd.RankOf(y);
    if (stats != nullptr) ++stats->swap_candidates;

    double best_emd = current_emd;
    size_t best_pos = cluster.sorted_ranks.size();
    std::vector<uint32_t> best_ranks;
    for (size_t pos = 0; pos < cluster.sorted_ranks.size(); ++pos) {
      std::vector<uint32_t> candidate =
          RanksAfterSwap(cluster.sorted_ranks, pos, y_rank);
      double candidate_emd = emd.EmdFromSortedRanks(candidate);
      if (candidate_emd < best_emd) {
        best_emd = candidate_emd;
        best_pos = pos;
        best_ranks = std::move(candidate);
      }
    }
    if (best_pos == cluster.sorted_ranks.size()) continue;  // no improvement

    // Identify the member row carrying the dropped rank and replace it.
    uint32_t dropped_rank = cluster.sorted_ranks[best_pos];
    for (size_t i = 0; i < cluster.rows.size(); ++i) {
      if (emd.RankOf(cluster.rows[i]) == dropped_rank) {
        cluster.rows[i] = y;
        break;
      }
    }
    cluster.sorted_ranks = std::move(best_ranks);
    current_emd = best_emd;
    if (stats != nullptr) ++stats->swaps;
  }
  return std::move(cluster.rows);
}

void RemoveRows(const Cluster& cluster, std::vector<size_t>* remaining) {
  size_t max_index = 0;
  for (size_t row : *remaining) max_index = std::max(max_index, row);
  std::vector<bool> in_cluster(max_index + 1, false);
  for (size_t row : cluster) {
    if (row <= max_index) in_cluster[row] = true;
  }
  std::erase_if(*remaining, [&](size_t row) { return in_cluster[row]; });
}

}  // namespace

Result<Partition> KAnonFirstPartition(const QiSpace& space,
                                      const EmdCalculator& emd, size_t k,
                                      double t,
                                      const KAnonFirstOptions& options,
                                      KAnonFirstStats* stats) {
  const size_t n = space.num_records();
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > n) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds number of records " +
                                   std::to_string(n));
  }
  if (t < 0.0) return Status::InvalidArgument("t must be non-negative");

  Partition partition;
  std::vector<size_t> remaining(n);
  std::iota(remaining.begin(), remaining.end(), 0);

  while (!remaining.empty()) {
    std::vector<double> centroid = space.Centroid(remaining);
    size_t x0 = space.FarthestFromPoint(remaining, centroid);
    Cluster cluster =
        GenerateCluster(space, emd, x0, remaining, k, t, options, stats);
    RemoveRows(cluster, &remaining);
    partition.clusters.push_back(std::move(cluster));

    if (!remaining.empty()) {
      const double* x0_point = space.point(x0);
      std::vector<double> x0_coords(x0_point, x0_point + space.num_dims());
      size_t x1 = space.FarthestFromPoint(remaining, x0_coords);
      Cluster second =
          GenerateCluster(space, emd, x1, remaining, k, t, options, stats);
      RemoveRows(second, &remaining);
      partition.clusters.push_back(std::move(second));
    }
  }
  return partition;
}

Result<Partition> KAnonFirstTCloseness(const QiSpace& space,
                                       const EmdCalculator& emd, size_t k,
                                       double t,
                                       const KAnonFirstOptions& options,
                                       KAnonFirstStats* stats) {
  TCM_ASSIGN_OR_RETURN(Partition initial,
                       KAnonFirstPartition(space, emd, k, t, options, stats));
  MergeStats merge_stats;
  auto merged =
      MergeUntilTClose(space, emd, t, std::move(initial), &merge_stats);
  if (merged.ok() && stats != nullptr) {
    stats->merges = merge_stats.merges;
    stats->final_max_emd = merge_stats.final_max_emd;
  }
  return merged;
}

}  // namespace tcm
