#include "tclose/merge.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <future>
#include <iterator>
#include <limits>
#include <utility>

#include "common/check.h"
#include "distance/emd_bounds.h"
#include "obs/trace.h"

namespace tcm {
namespace {

// One cluster of the repair loop. Alongside rows/centroid it carries the
// machinery that makes a merge step O(Δ): per-calculator member ranks
// kept sorted (the cluster's confidential distribution in the closed-form
// EMD's terms), so merging two clusters is one std::merge and an exact
// re-evaluation is the O(c) EmdFromSortedRanks instead of the
// gather-and-sort ClusterEmd pays from scratch.
struct ClusterState {
  // How `emd` relates to the cluster's true worst EMD. kUpper is only
  // stored when the bound already meets t (the cluster is proven safe);
  // kLower only when the bound exceeds t (proven violating).
  enum class Kind : uint8_t { kExact, kUpper, kLower };

  Cluster rows;
  std::vector<double> centroid;  // QI centroid (mean of member points)
  double emd = 0.0;
  Kind kind = Kind::kExact;
  std::vector<std::vector<uint32_t>> ranks;  // per calculator, ascending
};

// Per-engine-run tallies, merged into MergeStats by the callers.
struct EngineCounters {
  size_t merges = 0;
  size_t candidate_checks = 0;
  size_t pruned_checks = 0;
  size_t exact_checks = 0;
};

std::vector<double> WeightedCentroid(const std::vector<double>& a, size_t na,
                                     const std::vector<double>& b, size_t nb) {
  std::vector<double> out(a.size());
  double wa = static_cast<double>(na), wb = static_cast<double>(nb);
  for (size_t d = 0; d < a.size(); ++d) {
    out[d] = (a[d] * wa + b[d] * wb) / (wa + wb);
  }
  return out;
}

double CentroidSquaredDistance(const std::vector<double>& a,
                               const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    double diff = a[d] - b[d];
    sum += diff * diff;
  }
  return sum;
}

double ExactWorstEmd(const ClusterState& state,
                     const std::vector<const EmdCalculator*>& emds) {
  double worst = 0.0;
  for (size_t j = 0; j < emds.size(); ++j) {
    worst = std::max(worst, emds[j]->EmdFromSortedRanks(state.ranks[j]));
  }
  return worst;
}

// Builds the engine's working set from an initial partition. With
// `prune_init` (hierarchical engine only), a cluster small enough that
// even the best-placed cluster of its size violates t — MinClusterEmd,
// Prop. 1 — is marked a proven violator without an exact evaluation.
std::vector<ClusterState> InitStates(
    const QiSpace& space, const std::vector<const EmdCalculator*>& emds,
    double t, bool prune_init, Partition initial, EngineCounters* counters) {
  const size_t n = space.num_records();
  std::vector<ClusterState> states;
  states.reserve(initial.clusters.size());
  for (Cluster& cluster : initial.clusters) {
    ClusterState state;
    state.centroid = space.Centroid(cluster);
    state.ranks.resize(emds.size());
    for (size_t j = 0; j < emds.size(); ++j) {
      std::vector<uint32_t>& ranks = state.ranks[j];
      ranks.reserve(cluster.size());
      for (size_t row : cluster) ranks.push_back(emds[j]->RankOf(row));
      std::sort(ranks.begin(), ranks.end());
    }
    ++counters->candidate_checks;
    double lower = n > 1 ? MinClusterEmd(n, cluster.size()) : 0.0;
    if (prune_init && lower > t) {
      state.emd = lower;
      state.kind = ClusterState::Kind::kLower;
      ++counters->pruned_checks;
    } else {
      state.emd = ExactWorstEmd(state, emds);
      state.kind = ClusterState::Kind::kExact;
      ++counters->exact_checks;
    }
    state.rows = std::move(cluster);
    states.push_back(std::move(state));
  }
  return states;
}

// The sequential repair loop over one working set, compacted so every
// scan is O(alive): a merged-away cluster is erased from the vector
// rather than tombstoned (the pre-compaction engine rescanned every dead
// slot each round — 832 rounds × the full initial cluster count on the
// 1M-row bench). Erasure preserves relative order, and the merge target
// stays in place, so the worst-first / nearest-partner tie-breaks match
// the historical slot-order semantics exactly; with pruning off the
// partition bytes are identical to the legacy engine's.
//
// Pruning (when enabled) answers checks from the closed-form bounds: a
// fresh merger of two non-lower-bounded clusters whose
// MixtureEmdUpperBound already meets t is proven safe with no exact
// evaluation. Only values above t compete in the worst-cluster scan and
// every such value is exact or a lower bound of a proven violator, so
// pruning never changes which cluster is selected.
void RunEngine(const std::vector<const EmdCalculator*>& emds, double t,
               bool prune, std::vector<ClusterState>* states,
               EngineCounters* counters) {
  std::vector<ClusterState>& live = *states;
  while (live.size() > 1) {
    // Cluster farthest from satisfying t-closeness.
    size_t worst = live.size();
    double worst_emd = t;
    for (size_t i = 0; i < live.size(); ++i) {
      if (live[i].emd > worst_emd) {
        worst_emd = live[i].emd;
        worst = i;
      }
    }
    if (worst == live.size()) break;  // every cluster is t-close

    // One span per merge round: sequential-tail pressure shows up in
    // traces as individually measurable slices, and span count equals
    // the engine's merge tally. Costs one relaxed atomic load per round
    // when tracing is off.
    TraceSpan round_span("merge_round");

    // Nearest other cluster in QI centroid distance.
    size_t partner = live.size();
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < live.size(); ++i) {
      if (i == worst) continue;
      double dist =
          CentroidSquaredDistance(live[worst].centroid, live[i].centroid);
      if (dist < best_dist) {
        best_dist = dist;
        partner = i;
      }
    }
    TCM_DCHECK_LT(partner, live.size());

    ClusterState& dst = live[worst];
    ClusterState& src = live[partner];
    const size_t dst_size = dst.rows.size();
    const size_t src_size = src.rows.size();
    dst.centroid =
        WeightedCentroid(dst.centroid, dst_size, src.centroid, src_size);
    dst.rows.insert(dst.rows.end(), src.rows.begin(), src.rows.end());
    for (size_t j = 0; j < emds.size(); ++j) {
      std::vector<uint32_t> merged;
      merged.reserve(dst.ranks[j].size() + src.ranks[j].size());
      std::merge(dst.ranks[j].begin(), dst.ranks[j].end(),
                 src.ranks[j].begin(), src.ranks[j].end(),
                 std::back_inserter(merged));
      dst.ranks[j] = std::move(merged);
    }
    ++counters->candidate_checks;
    bool pruned = false;
    if (prune && dst.kind != ClusterState::Kind::kLower &&
        src.kind != ClusterState::Kind::kLower) {
      // Both inputs are exact values or upper bounds, so the mixture
      // bound is a sound upper bound for the union.
      double upper =
          MixtureEmdUpperBound(dst_size, dst.emd, src_size, src.emd);
      if (upper <= t) {
        dst.emd = upper;
        dst.kind = ClusterState::Kind::kUpper;
        ++counters->pruned_checks;
        pruned = true;
      }
    }
    if (!pruned) {
      dst.emd = ExactWorstEmd(dst, emds);
      dst.kind = ClusterState::Kind::kExact;
      ++counters->exact_checks;
    }
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(partner));
    ++counters->merges;
  }
}

Partition FinishStates(std::vector<ClusterState> states, double* max_emd) {
  Partition out;
  out.clusters.reserve(states.size());
  *max_emd = 0.0;
  for (ClusterState& state : states) {
    *max_emd = std::max(*max_emd, state.emd);
    out.clusters.push_back(std::move(state.rows));
  }
  return out;
}

void AddCounters(const EngineCounters& from, MergeStats* into) {
  into->merges += from.merges;
  into->candidate_checks += from.candidate_checks;
  into->pruned_checks += from.pruned_checks;
  into->exact_checks += from.exact_checks;
}

// Number of hierarchical subtrees for `num_clusters` clusters over
// `num_rows` rows. Deliberately a pure function of the data and options —
// never of the pool's thread count — so a release is reproducible at any
// parallelism. Each subtree must hold enough rows to form several t-close
// clusters of the paper's minimum size (Eq. 3 RequiredClusterSize,
// adjusted per Eq. 4), and enough clusters that the fan-out overhead is
// worth paying.
size_t PickSubtreeCount(size_t num_rows, size_t num_clusters, double t,
                        const MergeOptions& options) {
  constexpr size_t kMinSubtreeClusters = 64;
  constexpr size_t kDefaultMaxSubtrees = 16;
  constexpr size_t kTargetClustersPerSubtree = 8;
  if (num_rows < 2 || num_clusters < 2 * kMinSubtreeClusters) return 1;
  size_t min_rows = options.min_subtree_rows;
  if (min_rows == 0) {
    size_t k_star = AdjustClusterSizeForRemainder(
        num_rows, RequiredClusterSize(num_rows, 1, t));
    min_rows = kTargetClustersPerSubtree * std::max<size_t>(1, k_star);
  }
  size_t cap = options.max_subtrees == 0 ? kDefaultMaxSubtrees
                                         : options.max_subtrees;
  size_t by_rows = num_rows / std::max<size_t>(1, min_rows);
  size_t by_clusters = num_clusters / kMinSubtreeClusters;
  size_t subtrees = std::min({by_rows, by_clusters, cap});
  return std::max<size_t>(1, subtrees);
}

}  // namespace

const char* MergeStrategyName(MergeStrategy strategy) {
  switch (strategy) {
    case MergeStrategy::kSequential:
      return "sequential";
    case MergeStrategy::kHierarchical:
      return "hierarchical";
  }
  return "unknown";
}

Result<MergeStrategy> ParseMergeStrategy(const std::string& name) {
  if (name == "sequential") return MergeStrategy::kSequential;
  if (name == "hierarchical") return MergeStrategy::kHierarchical;
  return Status::InvalidArgument(
      "merge strategy must be \"sequential\" or \"hierarchical\", got \"" +
      name + "\"");
}

Result<Partition> MergeUntilTClose(const QiSpace& space,
                                   const EmdCalculator& emd, double t,
                                   Partition initial, MergeStats* stats) {
  return MergeUntilTCloseMulti(space, {&emd}, t, std::move(initial), stats);
}

Result<Partition> MergeUntilTCloseMulti(
    const QiSpace& space, const std::vector<const EmdCalculator*>& emds,
    double t, Partition initial, MergeStats* stats) {
  return MergeUntilTCloseWith(space, emds, t, std::move(initial),
                              MergeOptions{}, stats);
}

Result<Partition> MergeUntilTCloseWith(
    const QiSpace& space, const std::vector<const EmdCalculator*>& emds,
    double t, Partition initial, const MergeOptions& options,
    MergeStats* stats) {
  TCM_RETURN_IF_ERROR(
      ValidatePartition(initial, space.num_records(), /*min_cluster_size=*/1));
  if (t < 0.0) return Status::InvalidArgument("t must be non-negative");
  if (emds.empty()) {
    return Status::InvalidArgument("need at least one EMD calculator");
  }

  MergeStats local;
  const bool hierarchical =
      options.strategy == MergeStrategy::kHierarchical;
  const size_t subtrees =
      hierarchical ? PickSubtreeCount(space.num_records(),
                                      initial.clusters.size(), t, options)
                   : 1;

  EngineCounters init_counters;
  std::vector<ClusterState> states =
      InitStates(space, emds, t, /*prune_init=*/hierarchical && options.prune,
                 std::move(initial), &init_counters);

  EngineCounters tail_counters;
  if (subtrees > 1) {
    // Carve the working set into contiguous, balanced slices. Each task
    // owns its slice outright, so subtree repairs share nothing mutable
    // and completion order cannot affect the result.
    local.num_subtrees = subtrees;
    std::vector<std::vector<ClusterState>> slices(subtrees);
    const size_t base = states.size() / subtrees;
    const size_t extra = states.size() % subtrees;
    size_t next = 0;
    for (size_t s = 0; s < subtrees; ++s) {
      size_t take = base + (s < extra ? 1 : 0);
      auto first = states.begin() + static_cast<std::ptrdiff_t>(next);
      auto last = first + static_cast<std::ptrdiff_t>(take);
      slices[s].assign(std::make_move_iterator(first),
                       std::make_move_iterator(last));
      next += take;
    }
    states.clear();

    std::vector<EngineCounters> slice_counters(subtrees);
    auto run_slice = [&emds, t, &options, &slices,
                      &slice_counters](size_t s) {
      TraceSpan span("merge_subtree");
      RunEngine(emds, t, options.prune, &slices[s], &slice_counters[s]);
    };
    if (options.pool != nullptr) {
      std::vector<std::future<void>> futures;
      futures.reserve(subtrees);
      for (size_t s = 0; s < subtrees; ++s) {
        futures.push_back(
            options.pool->Submit([&run_slice, s]() { run_slice(s); }));
      }
      // Collect in submission order, lending this thread to the pool
      // while any subtree is still pending so a small pool (or one
      // already busy with other work) cannot stall the join.
      for (std::future<void>& future : futures) {
        while (future.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
          if (!options.pool->TryRunOneTask()) {
            future.wait();
          }
        }
        future.get();
      }
    } else {
      for (size_t s = 0; s < subtrees; ++s) run_slice(s);
    }

    // Stitch the surviving clusters back together in subtree order and
    // run the global tail: stored EMDs and sorted ranks carry over, so
    // the tail pays no re-initialization.
    for (size_t s = 0; s < subtrees; ++s) {
      AddCounters(slice_counters[s], &local);
      local.subtree_merges += slice_counters[s].merges;
      states.insert(states.end(),
                    std::make_move_iterator(slices[s].begin()),
                    std::make_move_iterator(slices[s].end()));
      slices[s].clear();
    }
    TraceSpan tail_span("merge_tail");
    RunEngine(emds, t, options.prune, &states, &tail_counters);
  } else {
    RunEngine(emds, t, options.prune, &states, &tail_counters);
  }

  AddCounters(init_counters, &local);
  AddCounters(tail_counters, &local);
  local.tail_merges = tail_counters.merges;

  double max_emd = 0.0;
  Partition out = FinishStates(std::move(states), &max_emd);
  local.final_max_emd = max_emd;
  if (stats != nullptr) *stats = local;
  return out;
}

Result<Partition> MergeTCloseness(const QiSpace& space,
                                  const EmdCalculator& emd, size_t k, double t,
                                  const MicroaggOptions& options,
                                  MergeStats* stats) {
  TCM_ASSIGN_OR_RETURN(Partition initial, Microaggregate(space, k, options));
  return MergeUntilTClose(space, emd, t, std::move(initial), stats);
}

}  // namespace tcm
