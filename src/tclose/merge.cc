#include "tclose/merge.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "obs/trace.h"

namespace tcm {
namespace {

// Live cluster bookkeeping for the merge loop: QI centroid and EMD are
// kept incrementally so each merge costs O(#clusters + |merged| log).
struct LiveCluster {
  Cluster rows;
  std::vector<double> centroid;  // QI centroid (mean of member points)
  double emd = 0.0;
  bool alive = true;
};

std::vector<double> WeightedCentroid(const std::vector<double>& a, size_t na,
                                     const std::vector<double>& b, size_t nb) {
  std::vector<double> out(a.size());
  double wa = static_cast<double>(na), wb = static_cast<double>(nb);
  for (size_t d = 0; d < a.size(); ++d) {
    out[d] = (a[d] * wa + b[d] * wb) / (wa + wb);
  }
  return out;
}

double CentroidSquaredDistance(const std::vector<double>& a,
                               const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    double diff = a[d] - b[d];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

Result<Partition> MergeUntilTClose(const QiSpace& space,
                                   const EmdCalculator& emd, double t,
                                   Partition initial, MergeStats* stats) {
  return MergeUntilTCloseMulti(space, {&emd}, t, std::move(initial), stats);
}

Result<Partition> MergeUntilTCloseMulti(
    const QiSpace& space, const std::vector<const EmdCalculator*>& emds,
    double t, Partition initial, MergeStats* stats) {
  TCM_RETURN_IF_ERROR(
      ValidatePartition(initial, space.num_records(), /*min_cluster_size=*/1));
  if (t < 0.0) return Status::InvalidArgument("t must be non-negative");
  if (emds.empty()) {
    return Status::InvalidArgument("need at least one EMD calculator");
  }
  auto worst_emd_of = [&emds](const Cluster& cluster) {
    double worst = 0.0;
    for (const EmdCalculator* emd : emds) {
      worst = std::max(worst, emd->ClusterEmd(cluster));
    }
    return worst;
  };

  std::vector<LiveCluster> live;
  live.reserve(initial.clusters.size());
  for (Cluster& cluster : initial.clusters) {
    LiveCluster lc;
    lc.centroid = space.Centroid(cluster);
    lc.emd = worst_emd_of(cluster);
    lc.rows = std::move(cluster);
    live.push_back(std::move(lc));
  }

  size_t merges = 0;
  size_t alive_count = live.size();
  while (alive_count > 1) {
    // Cluster farthest from satisfying t-closeness.
    size_t worst = live.size();
    double worst_emd = t;
    for (size_t i = 0; i < live.size(); ++i) {
      if (live[i].alive && live[i].emd > worst_emd) {
        worst_emd = live[i].emd;
        worst = i;
      }
    }
    if (worst == live.size()) break;  // every cluster is t-close

    // One span per merge round: the sequential tail that caps thread
    // scaling (832 rounds on the 1M-row bench) shows up in traces as
    // individually measurable slices, and span count equals
    // MergeStats::merges. Costs one relaxed atomic load per round when
    // tracing is off.
    TraceSpan round_span("merge_round");

    // Nearest alive cluster in QI centroid distance.
    size_t partner = live.size();
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < live.size(); ++i) {
      if (i == worst || !live[i].alive) continue;
      double dist =
          CentroidSquaredDistance(live[worst].centroid, live[i].centroid);
      if (dist < best_dist) {
        best_dist = dist;
        partner = i;
      }
    }
    TCM_DCHECK_LT(partner, live.size());

    LiveCluster& dst = live[worst];
    LiveCluster& src = live[partner];
    dst.centroid = WeightedCentroid(dst.centroid, dst.rows.size(),
                                    src.centroid, src.rows.size());
    dst.rows.insert(dst.rows.end(), src.rows.begin(), src.rows.end());
    dst.emd = worst_emd_of(dst.rows);
    src.alive = false;
    src.rows.clear();
    --alive_count;
    ++merges;
  }

  Partition out;
  double max_emd = 0.0;
  for (LiveCluster& lc : live) {
    if (!lc.alive) continue;
    max_emd = std::max(max_emd, lc.emd);
    out.clusters.push_back(std::move(lc.rows));
  }
  if (stats != nullptr) {
    stats->merges = merges;
    stats->final_max_emd = max_emd;
  }
  return out;
}

Result<Partition> MergeTCloseness(const QiSpace& space,
                                  const EmdCalculator& emd, size_t k, double t,
                                  const MicroaggOptions& options,
                                  MergeStats* stats) {
  TCM_ASSIGN_OR_RETURN(Partition initial, Microaggregate(space, k, options));
  return MergeUntilTClose(space, emd, t, std::move(initial), stats);
}

}  // namespace tcm
