#ifndef TCM_TCLOSE_ANATOMY_H_
#define TCM_TCLOSE_ANATOMY_H_

#include "common/result.h"
#include "data/dataset.h"
#include "microagg/partition.h"

namespace tcm {

// Anatomy-style release (Xiao & Tao, VLDB 2006; paper Sec. 2.3): instead
// of replacing quasi-identifiers by centroids, publish two tables that
// share a group id —
//   * the QI table: the ORIGINAL quasi-identifier values plus GROUP_ID,
//   * the sensitive table: GROUP_ID plus the confidential values.
// The link between a subject's QIs and their confidential value is broken
// at the group level (an intruder narrows a subject to a group, then
// faces the group's confidential distribution), while the QI values keep
// full fidelity: SSE over the quasi-identifiers is exactly zero. Combined
// with a t-close partition, the group-level confidential distribution is
// additionally within t of the global one, i.e. the release carries the
// same t-closeness guarantee as the aggregated form.
struct AnatomyRelease {
  Dataset qi_table;         // original QIs + GROUP_ID (+ kOther attributes)
  Dataset sensitive_table;  // GROUP_ID + confidential attributes
};

// Builds the two tables from any partition of `data` (typically the
// output of one of the three t-closeness algorithms).
// FailedPrecondition if the partition does not exactly cover the data;
// InvalidArgument if roles are missing.
Result<AnatomyRelease> MakeAnatomyRelease(const Dataset& data,
                                          const Partition& partition);

// The adversary's posterior over a subject's confidential value under an
// anatomy release is the subject's group distribution; this helper
// returns the maximum group-level probability of pinning the exact
// confidential value (1/|group| * multiplicity), the natural disclosure
// score for the release.
Result<double> AnatomyAttributeDisclosure(const Dataset& data,
                                          const Partition& partition,
                                          size_t confidential_offset = 0);

}  // namespace tcm

#endif  // TCM_TCLOSE_ANATOMY_H_
