#ifndef TCM_PRIVACY_TCLOSENESS_H_
#define TCM_PRIVACY_TCLOSENESS_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

struct TClosenessReport {
  size_t num_equivalence_classes = 0;
  double max_emd = 0.0;   // the t actually achieved (Definition 2)
  double mean_emd = 0.0;
};

// Measures t-closeness of a release: the EMD (ordered ground distance)
// between each equivalence class's confidential distribution and the
// whole data set's, maximized over classes. `confidential_offset` selects
// among several confidential attributes.
Result<TClosenessReport> EvaluateTCloseness(const Dataset& data,
                                            size_t confidential_offset = 0);

// Same measurement over precomputed equivalence classes, for callers
// that already grouped the release (e.g. the verify stage, which shares
// one EquivalenceClasses pass between the k and t checks). The guards
// (confidential attribute present, at least 2 records) still apply.
Result<TClosenessReport> EvaluateTCloseness(
    const Dataset& data, const std::vector<std::vector<size_t>>& classes,
    size_t confidential_offset = 0);

// True iff every equivalence class is within EMD `t` of the global
// confidential distribution (with a small epsilon for float round-off).
Result<bool> IsTClose(const Dataset& data, double t,
                      size_t confidential_offset = 0);
Result<bool> IsTClose(const Dataset& data, double t,
                      const std::vector<std::vector<size_t>>& classes,
                      size_t confidential_offset = 0);

}  // namespace tcm

#endif  // TCM_PRIVACY_TCLOSENESS_H_
