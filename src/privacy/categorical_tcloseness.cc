#include "privacy/categorical_tcloseness.h"

#include <algorithm>
#include <vector>

#include "distance/categorical.h"
#include "privacy/equivalence.h"

namespace tcm {
namespace {

Result<CategoricalTClosenessReport> Evaluate(
    const Dataset& data, size_t confidential_offset,
    AttributeType required_type,
    double (*distance)(const std::vector<size_t>&,
                       const std::vector<size_t>&)) {
  const auto confidential = data.schema().ConfidentialIndices();
  if (confidential.size() <= confidential_offset) {
    return Status::InvalidArgument("confidential attribute not available");
  }
  size_t col = confidential[confidential_offset];
  const Attribute& attr = data.schema().at(col);
  if (attr.type != required_type) {
    return Status::InvalidArgument(
        std::string("confidential attribute is ") +
        AttributeTypeName(attr.type) + ", expected " +
        AttributeTypeName(required_type));
  }
  // Category universe: the declared schema categories, or the observed
  // code range when the schema does not enumerate them.
  size_t universe = attr.categories.size();
  for (size_t row = 0; row < data.NumRecords(); ++row) {
    universe = std::max(
        universe, static_cast<size_t>(data.cell(row, col).category()) + 1);
  }
  if (universe == 0) {
    return Status::InvalidArgument("no categories declared or observed");
  }

  std::vector<size_t> global(universe, 0);
  for (size_t row = 0; row < data.NumRecords(); ++row) {
    ++global[static_cast<size_t>(data.cell(row, col).category())];
  }

  TCM_ASSIGN_OR_RETURN(auto classes, EquivalenceClasses(data));
  CategoricalTClosenessReport report;
  report.num_equivalence_classes = classes.size();
  double total = 0.0;
  for (const auto& group : classes) {
    std::vector<size_t> counts(universe, 0);
    for (size_t row : group) {
      ++counts[static_cast<size_t>(data.cell(row, col).category())];
    }
    double value = distance(counts, global);
    report.max_distance = std::max(report.max_distance, value);
    total += value;
  }
  if (!classes.empty()) {
    report.mean_distance = total / static_cast<double>(classes.size());
  }
  return report;
}

}  // namespace

Result<CategoricalTClosenessReport> EvaluateOrdinalTCloseness(
    const Dataset& data, size_t confidential_offset) {
  return Evaluate(data, confidential_offset, AttributeType::kOrdinal,
                  &OrdinalCategoricalEmd);
}

Result<CategoricalTClosenessReport> EvaluateNominalTCloseness(
    const Dataset& data, size_t confidential_offset) {
  return Evaluate(data, confidential_offset, AttributeType::kNominal,
                  &NominalCategoricalEmd);
}

Result<bool> IsOrdinalTClose(const Dataset& data, double t,
                             size_t confidential_offset) {
  TCM_ASSIGN_OR_RETURN(CategoricalTClosenessReport report,
                       EvaluateOrdinalTCloseness(data, confidential_offset));
  return report.max_distance <= t + 1e-9;
}

Result<bool> IsNominalTClose(const Dataset& data, double t,
                             size_t confidential_offset) {
  TCM_ASSIGN_OR_RETURN(CategoricalTClosenessReport report,
                       EvaluateNominalTCloseness(data, confidential_offset));
  return report.max_distance <= t + 1e-9;
}

}  // namespace tcm
