#include "privacy/ldiversity.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "privacy/equivalence.h"

namespace tcm {

Result<LDiversityReport> EvaluateLDiversity(const Dataset& data,
                                            size_t confidential_offset) {
  const auto confidential = data.schema().ConfidentialIndices();
  if (confidential.size() <= confidential_offset) {
    return Status::InvalidArgument("confidential attribute not available");
  }
  size_t conf_col = confidential[confidential_offset];
  TCM_ASSIGN_OR_RETURN(auto classes, EquivalenceClasses(data));

  LDiversityReport report;
  report.num_equivalence_classes = classes.size();
  report.min_distinct_values = std::numeric_limits<size_t>::max();
  report.min_entropy_l = std::numeric_limits<double>::infinity();
  for (const auto& group : classes) {
    std::map<double, size_t> counts;
    for (size_t row : group) ++counts[data.cell(row, conf_col).AsDouble()];
    report.min_distinct_values =
        std::min(report.min_distinct_values, counts.size());
    double entropy = 0.0;
    for (const auto& [unused, count] : counts) {
      double p = static_cast<double>(count) / static_cast<double>(group.size());
      entropy -= p * std::log(p);
    }
    report.min_entropy_l = std::min(report.min_entropy_l, std::exp(entropy));
  }
  if (classes.empty()) {
    report.min_distinct_values = 0;
    report.min_entropy_l = 0.0;
  }
  return report;
}

Result<bool> IsLDiverse(const Dataset& data, size_t l,
                        size_t confidential_offset) {
  TCM_ASSIGN_OR_RETURN(LDiversityReport report,
                       EvaluateLDiversity(data, confidential_offset));
  return report.min_distinct_values >= l;
}

}  // namespace tcm
