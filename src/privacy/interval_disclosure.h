#ifndef TCM_PRIVACY_INTERVAL_DISCLOSURE_H_
#define TCM_PRIVACY_INTERVAL_DISCLOSURE_H_

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

// Rank-based interval disclosure (Domingo-Ferrer & Torra 2001), the
// standard SDC attribute-disclosure score for perturbative masking: a
// cell is disclosive when the original value falls inside a narrow rank
// window around the released value — the intruder who sees the masked
// value can infer the original to within that window.
struct IntervalDisclosureReport {
  // Share of (record, QI attribute) cells whose original value lies
  // within the +/- window_fraction rank interval around the masked value.
  double disclosure_rate = 0.0;
  size_t cells = 0;
};

// `window_fraction` is the half-width of the rank window as a fraction of
// n (the classic choice is 0.01 = 1% of ranks to each side).
// InvalidArgument if shapes differ, there are no QIs, or window_fraction
// is not in (0, 1].
Result<IntervalDisclosureReport> EvaluateIntervalDisclosure(
    const Dataset& original, const Dataset& anonymized,
    double window_fraction = 0.01);

}  // namespace tcm

#endif  // TCM_PRIVACY_INTERVAL_DISCLOSURE_H_
