#include "privacy/ntcloseness.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "distance/emd.h"
#include "distance/qi_space.h"
#include "privacy/equivalence.h"

namespace tcm {
namespace {

// EMD (ordered ground distance) between the confidential distribution of
// `subset` and that of `superset`, with the superset's records as bins.
// `subset` must be contained in `superset`.
double SubsetEmd(const std::vector<double>& confidential,
                 const std::vector<size_t>& subset,
                 std::vector<size_t> superset) {
  std::stable_sort(superset.begin(), superset.end(),
                   [&](size_t a, size_t b) {
                     return confidential[a] < confidential[b];
                   });
  std::unordered_set<size_t> members(subset.begin(), subset.end());
  const size_t m = superset.size();
  std::vector<double> p(m, 0.0), q(m, 1.0 / static_cast<double>(m));
  double share = 1.0 / static_cast<double>(subset.size());
  for (size_t i = 0; i < m; ++i) {
    if (members.count(superset[i]) > 0) p[i] = share;
  }
  return OrderedEmd(p, q);
}

}  // namespace

Result<NTClosenessReport> EvaluateNTCloseness(const Dataset& data,
                                              size_t min_superset_size,
                                              size_t confidential_offset) {
  const auto confidential_cols = data.schema().ConfidentialIndices();
  if (confidential_cols.size() <= confidential_offset) {
    return Status::InvalidArgument("confidential attribute not available");
  }
  if (data.NumRecords() < 2) {
    return Status::InvalidArgument("need at least 2 records");
  }
  TCM_ASSIGN_OR_RETURN(auto classes, EquivalenceClasses(data));
  const size_t n_records = data.NumRecords();
  const size_t superset_size = std::min(min_superset_size, n_records);

  QiSpace space(data);
  std::vector<double> confidential =
      data.ColumnAsDouble(confidential_cols[confidential_offset]);
  std::vector<size_t> all(n_records);
  for (size_t i = 0; i < n_records; ++i) all[i] = i;

  NTClosenessReport report;
  report.num_equivalence_classes = classes.size();
  double total = 0.0;
  for (const auto& group : classes) {
    double emd = 0.0;
    if (group.size() < superset_size) {
      // Natural superset: the records nearest to the class centroid in
      // (released) QI space. The class members share the centroid value,
      // so they are the nearest and always included.
      std::vector<double> centroid = space.Centroid(group);
      std::vector<std::pair<double, size_t>> scored;
      scored.reserve(n_records);
      for (size_t row : all) {
        scored.emplace_back(space.SquaredDistanceToPoint(row, centroid), row);
      }
      std::partial_sort(scored.begin(), scored.begin() + superset_size,
                        scored.end());
      std::vector<size_t> superset;
      superset.reserve(superset_size);
      for (size_t i = 0; i < superset_size; ++i) {
        superset.push_back(scored[i].second);
      }
      // Defensive: make sure every class member made it into the ball
      // (ties at the boundary could in principle push one out).
      std::unordered_set<size_t> in_ball(superset.begin(), superset.end());
      for (size_t row : group) {
        if (in_ball.insert(row).second) superset.push_back(row);
      }
      emd = SubsetEmd(confidential, group, std::move(superset));
    }
    report.max_emd = std::max(report.max_emd, emd);
    total += emd;
  }
  if (!classes.empty()) {
    report.mean_emd = total / static_cast<double>(classes.size());
  }
  return report;
}

Result<bool> IsNTClose(const Dataset& data, size_t min_superset_size,
                       double t, size_t confidential_offset) {
  TCM_ASSIGN_OR_RETURN(
      NTClosenessReport report,
      EvaluateNTCloseness(data, min_superset_size, confidential_offset));
  return report.max_emd <= t + 1e-9;
}

}  // namespace tcm
