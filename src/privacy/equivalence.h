#ifndef TCM_PRIVACY_EQUIVALENCE_H_
#define TCM_PRIVACY_EQUIVALENCE_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

// Groups records by exact equality of their quasi-identifier values.
// Each returned group is a list of record indices; together they cover
// every record exactly once. The equivalence classes of a released
// dataset are the unit all syntactic privacy checks operate on.
//
// InvalidArgument if the dataset has no quasi-identifiers.
Result<std::vector<std::vector<size_t>>> EquivalenceClasses(
    const Dataset& data);

}  // namespace tcm

#endif  // TCM_PRIVACY_EQUIVALENCE_H_
