#include "privacy/interval_disclosure.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/stats.h"

namespace tcm {

Result<IntervalDisclosureReport> EvaluateIntervalDisclosure(
    const Dataset& original, const Dataset& anonymized,
    double window_fraction) {
  if (original.NumRecords() != anonymized.NumRecords() ||
      original.NumAttributes() != anonymized.NumAttributes()) {
    return Status::InvalidArgument("dataset shapes differ");
  }
  if (original.NumRecords() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  if (window_fraction <= 0.0 || window_fraction > 1.0) {
    return Status::InvalidArgument("window_fraction must be in (0, 1]");
  }
  std::vector<size_t> qi = original.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }

  const size_t n = original.NumRecords();
  const double window = window_fraction * static_cast<double>(n);
  IntervalDisclosureReport report;
  for (size_t col : qi) {
    std::vector<double> orig_col = original.ColumnAsDouble(col);
    std::vector<double> anon_col = anonymized.ColumnAsDouble(col);
    // Sorted original column: ranks of arbitrary values are found by
    // binary search, so a masked value maps to a rank position even if it
    // does not occur in the original data.
    std::vector<double> sorted = orig_col;
    std::sort(sorted.begin(), sorted.end());
    auto rank_of = [&sorted](double value) {
      return static_cast<double>(
          std::lower_bound(sorted.begin(), sorted.end(), value) -
          sorted.begin());
    };
    for (size_t row = 0; row < n; ++row) {
      double masked_rank = rank_of(anon_col[row]);
      double original_rank = rank_of(orig_col[row]);
      if (std::fabs(masked_rank - original_rank) <= window) {
        report.disclosure_rate += 1.0;
      }
      ++report.cells;
    }
  }
  report.disclosure_rate /= static_cast<double>(report.cells);
  return report;
}

}  // namespace tcm
