#include "privacy/linkage.h"

#include <cmath>
#include <limits>
#include <vector>

#include "data/stats.h"

namespace tcm {

Result<LinkageRiskReport> EvaluateLinkageRisk(const Dataset& original,
                                              const Dataset& anonymized) {
  if (original.NumRecords() != anonymized.NumRecords() ||
      original.NumAttributes() != anonymized.NumAttributes()) {
    return Status::InvalidArgument("dataset shapes differ");
  }
  std::vector<size_t> qi = original.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }
  const size_t n = original.NumRecords();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  const size_t d = qi.size();

  // Both sides scaled by the ORIGINAL attribute ranges: the intruder's
  // metric is defined on the true domain.
  std::vector<double> orig_flat(n * d), anon_flat(n * d);
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> orig_col = original.ColumnAsDouble(qi[j]);
    std::vector<double> anon_col = anonymized.ColumnAsDouble(qi[j]);
    double lo = Min(orig_col);
    double range = Range(orig_col);
    double inv = (range > 0.0) ? 1.0 / range : 0.0;
    for (size_t row = 0; row < n; ++row) {
      orig_flat[row * d + j] = (orig_col[row] - lo) * inv;
      anon_flat[row * d + j] = (anon_col[row] - lo) * inv;
    }
  }

  constexpr double kTieEpsilon = 1e-12;
  double expected = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double* target = &orig_flat[i * d];
    double best = std::numeric_limits<double>::infinity();
    size_t tie_count = 0;
    bool self_in_tie = false;
    for (size_t j = 0; j < n; ++j) {
      const double* candidate = &anon_flat[j * d];
      double dist = 0.0;
      for (size_t c = 0; c < d; ++c) {
        double diff = target[c] - candidate[c];
        dist += diff * diff;
      }
      if (dist < best - kTieEpsilon) {
        best = dist;
        tie_count = 1;
        self_in_tie = (j == i);
      } else if (dist <= best + kTieEpsilon) {
        ++tie_count;
        self_in_tie = self_in_tie || (j == i);
      }
    }
    if (self_in_tie && tie_count > 0) {
      expected += 1.0 / static_cast<double>(tie_count);
    }
  }

  LinkageRiskReport report;
  report.records = n;
  report.expected_reidentification_rate = expected / static_cast<double>(n);
  return report;
}

}  // namespace tcm
