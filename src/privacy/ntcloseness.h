#ifndef TCM_PRIVACY_NTCLOSENESS_H_
#define TCM_PRIVACY_NTCLOSENESS_H_

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

// (n, t)-Closeness (Li, Li & Venkatasubramanian, TKDE 2010) — the
// relaxation the paper says its methods are "easily adaptable to": an
// equivalence class E satisfies (n, t)-closeness when there exists a
// *natural superset* of E with at least n records whose confidential
// distribution is within t of E's. Intuition: learning that a subject
// lives in a large neighbourhood-sized population is acceptable; only
// deviations from every sufficiently large surrounding population leak.
//
// Natural supersets here are QI-balls: the superset of E is E plus the
// records closest to E's QI centroid, grown until it holds >= n records
// (the whole data set is always a fallback, so (n_total, t) reduces to
// plain t-closeness).

struct NTClosenessReport {
  size_t num_equivalence_classes = 0;
  double max_emd = 0.0;   // max over classes of EMD(E, superset(E))
  double mean_emd = 0.0;
};

// EMD between a class and its natural superset, maximized over classes.
// `min_superset_size` is the model's n parameter. InvalidArgument on
// missing roles; min_superset_size is clamped to the data set size.
Result<NTClosenessReport> EvaluateNTCloseness(const Dataset& data,
                                              size_t min_superset_size,
                                              size_t confidential_offset = 0);

// True iff every class is within t of its natural superset.
Result<bool> IsNTClose(const Dataset& data, size_t min_superset_size,
                       double t, size_t confidential_offset = 0);

}  // namespace tcm

#endif  // TCM_PRIVACY_NTCLOSENESS_H_
