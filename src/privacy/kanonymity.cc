#include "privacy/kanonymity.h"

#include <algorithm>

#include "privacy/equivalence.h"

namespace tcm {

Result<KAnonymityReport> EvaluateKAnonymity(const Dataset& data) {
  TCM_ASSIGN_OR_RETURN(auto classes, EquivalenceClasses(data));
  return EvaluateKAnonymity(classes);
}

KAnonymityReport EvaluateKAnonymity(
    const std::vector<std::vector<size_t>>& classes) {
  KAnonymityReport report;
  report.num_equivalence_classes = classes.size();
  if (classes.empty()) return report;
  size_t total = 0;
  report.min_class_size = classes[0].size();
  for (const auto& group : classes) {
    report.min_class_size = std::min(report.min_class_size, group.size());
    report.max_class_size = std::max(report.max_class_size, group.size());
    total += group.size();
  }
  report.average_class_size =
      static_cast<double>(total) / static_cast<double>(classes.size());
  return report;
}

Result<bool> IsKAnonymous(const Dataset& data, size_t k) {
  TCM_ASSIGN_OR_RETURN(KAnonymityReport report, EvaluateKAnonymity(data));
  return report.min_class_size >= k;
}

bool IsKAnonymous(const std::vector<std::vector<size_t>>& classes, size_t k) {
  return EvaluateKAnonymity(classes).min_class_size >= k;
}

}  // namespace tcm
