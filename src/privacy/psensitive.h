#ifndef TCM_PRIVACY_PSENSITIVE_H_
#define TCM_PRIVACY_PSENSITIVE_H_

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

// p-Sensitive k-anonymity (Truta & Vinay 2006): a release satisfies the
// model when it is k-anonymous AND every equivalence class contains at
// least p distinct values of the confidential attribute. Referenced by
// the paper as the one k-anonymity refinement microaggregation had been
// applied to before this work.
Result<bool> IsPSensitiveKAnonymous(const Dataset& data, size_t p, size_t k,
                                    size_t confidential_offset = 0);

// The largest p for which the release is p-sensitive (0 when some class
// is empty of confidential values — cannot happen for valid data).
Result<size_t> MaxSensitiveP(const Dataset& data,
                             size_t confidential_offset = 0);

}  // namespace tcm

#endif  // TCM_PRIVACY_PSENSITIVE_H_
