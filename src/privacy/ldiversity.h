#ifndef TCM_PRIVACY_LDIVERSITY_H_
#define TCM_PRIVACY_LDIVERSITY_H_

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

struct LDiversityReport {
  size_t num_equivalence_classes = 0;
  // Distinct l-diversity: the minimum number of distinct confidential
  // values in any equivalence class.
  size_t min_distinct_values = 0;
  // Entropy l-diversity: min over classes of exp(H(class)); a class
  // satisfies entropy l-diversity when this is >= l.
  double min_entropy_l = 0.0;
};

// Machanavajjhala et al. 2007. Included because the paper positions
// t-closeness among the k-anonymity refinements; the report lets users
// compare what each model would certify for the same release.
Result<LDiversityReport> EvaluateLDiversity(const Dataset& data,
                                            size_t confidential_offset = 0);

// Distinct l-diversity test.
Result<bool> IsLDiverse(const Dataset& data, size_t l,
                        size_t confidential_offset = 0);

}  // namespace tcm

#endif  // TCM_PRIVACY_LDIVERSITY_H_
