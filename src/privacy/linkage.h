#ifndef TCM_PRIVACY_LINKAGE_H_
#define TCM_PRIVACY_LINKAGE_H_

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

// Distance-based record-linkage disclosure risk (the standard empirical
// attack for perturbative masking, cf. Winkler et al. 2002): an intruder
// who knows a subject's true quasi-identifiers links them to the nearest
// anonymized record. A record is counted correctly linked when its own
// anonymized version is among the nearest; ties (the whole point of
// k-anonymous aggregation) are credited fractionally as 1/|tie group|.
struct LinkageRiskReport {
  double expected_reidentification_rate = 0.0;  // mean linkage probability
  size_t records = 0;
};

// InvalidArgument if shapes differ or there are no quasi-identifiers.
// O(n^2); intended for evaluation-sized data.
Result<LinkageRiskReport> EvaluateLinkageRisk(const Dataset& original,
                                              const Dataset& anonymized);

}  // namespace tcm

#endif  // TCM_PRIVACY_LINKAGE_H_
