#include "privacy/equivalence.h"

#include <map>

namespace tcm {

Result<std::vector<std::vector<size_t>>> EquivalenceClasses(
    const Dataset& data) {
  std::vector<size_t> qi = data.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }
  // Exact-match grouping on the QI tuple. doubles are compared bitwise-
  // equal, which is correct here: aggregation writes identical centroid
  // values into every member of a cluster.
  std::map<std::vector<double>, std::vector<size_t>> groups;
  std::vector<double> key(qi.size());
  for (size_t row = 0; row < data.NumRecords(); ++row) {
    for (size_t j = 0; j < qi.size(); ++j) {
      key[j] = data.cell(row, qi[j]).AsDouble();
    }
    groups[key].push_back(row);
  }
  std::vector<std::vector<size_t>> out;
  out.reserve(groups.size());
  for (auto& [unused, rows] : groups) out.push_back(std::move(rows));
  return out;
}

}  // namespace tcm
