#include "privacy/equivalence.h"

#include <cstdint>
#include <functional>
#include <unordered_map>

namespace tcm {
namespace {

// Hash/equality over rows of the flattened QI matrix: a key is the q
// doubles starting at `offset`. -0.0 is folded into 0.0 before hashing so
// the two zero encodings land in one class, matching the ordered-map
// grouping this replaces (where -0.0 < 0.0 is false both ways).
struct QiRowHash {
  const std::vector<double>* keys;
  size_t width;
  size_t operator()(size_t offset) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (size_t j = 0; j < width; ++j) {
      double v = (*keys)[offset + j];
      if (v == 0.0) v = 0.0;
      h ^= std::hash<double>{}(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

struct QiRowEqual {
  const std::vector<double>* keys;
  size_t width;
  bool operator()(size_t a, size_t b) const {
    for (size_t j = 0; j < width; ++j) {
      if ((*keys)[a + j] != (*keys)[b + j]) return false;
    }
    return true;
  }
};

}  // namespace

Result<std::vector<std::vector<size_t>>> EquivalenceClasses(
    const Dataset& data) {
  std::vector<size_t> qi = data.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }
  const size_t n = data.NumRecords();
  const size_t q = qi.size();
  // Flatten the QI tuples once so grouping compares a contiguous array
  // instead of re-reading variant cells per probe. Exact-match grouping
  // on doubles is correct here: aggregation writes identical centroid
  // values into every member of a cluster.
  std::vector<double> keys(n * q);
  for (size_t row = 0; row < n; ++row) {
    for (size_t j = 0; j < q; ++j) {
      keys[row * q + j] = data.cell(row, qi[j]).AsDouble();
    }
  }
  std::vector<std::vector<size_t>> out;
  QiRowHash hash{&keys, q};
  QiRowEqual equal{&keys, q};
  std::unordered_map<size_t, size_t, QiRowHash, QiRowEqual> group_of(
      /*bucket_count=*/n + 1, hash, equal);
  for (size_t row = 0; row < n; ++row) {
    auto [it, inserted] = group_of.try_emplace(row * q, out.size());
    if (inserted) out.emplace_back();
    out[it->second].push_back(row);
  }
  // Rows are scanned ascending, so each group's members are ascending and
  // the groups appear in first-occurrence order — deterministic no matter
  // how the hash scatters them.
  return out;
}

}  // namespace tcm
