#include "privacy/tcloseness.h"

#include <algorithm>

#include "distance/emd.h"
#include "privacy/equivalence.h"

namespace tcm {

Result<TClosenessReport> EvaluateTCloseness(const Dataset& data,
                                            size_t confidential_offset) {
  TCM_ASSIGN_OR_RETURN(auto classes, EquivalenceClasses(data));
  return EvaluateTCloseness(data, classes, confidential_offset);
}

Result<TClosenessReport> EvaluateTCloseness(
    const Dataset& data, const std::vector<std::vector<size_t>>& classes,
    size_t confidential_offset) {
  if (data.schema().ConfidentialIndices().size() <= confidential_offset) {
    return Status::InvalidArgument("confidential attribute not available");
  }
  if (data.NumRecords() < 2) {
    return Status::InvalidArgument("need at least 2 records");
  }
  EmdCalculator emd(data, confidential_offset);
  TClosenessReport report;
  report.num_equivalence_classes = classes.size();
  double total = 0.0;
  for (const auto& group : classes) {
    double value = emd.ClusterEmd(group);
    report.max_emd = std::max(report.max_emd, value);
    total += value;
  }
  if (!classes.empty()) {
    report.mean_emd = total / static_cast<double>(classes.size());
  }
  return report;
}

Result<bool> IsTClose(const Dataset& data, double t,
                      size_t confidential_offset) {
  TCM_ASSIGN_OR_RETURN(TClosenessReport report,
                       EvaluateTCloseness(data, confidential_offset));
  // Tolerate float round-off in the closed-form EMD.
  return report.max_emd <= t + 1e-9;
}

Result<bool> IsTClose(const Dataset& data, double t,
                      const std::vector<std::vector<size_t>>& classes,
                      size_t confidential_offset) {
  TCM_ASSIGN_OR_RETURN(
      TClosenessReport report,
      EvaluateTCloseness(data, classes, confidential_offset));
  return report.max_emd <= t + 1e-9;
}

}  // namespace tcm
