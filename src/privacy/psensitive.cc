#include "privacy/psensitive.h"

#include "privacy/kanonymity.h"
#include "privacy/ldiversity.h"

namespace tcm {

Result<bool> IsPSensitiveKAnonymous(const Dataset& data, size_t p, size_t k,
                                    size_t confidential_offset) {
  TCM_ASSIGN_OR_RETURN(bool k_anonymous, IsKAnonymous(data, k));
  if (!k_anonymous) return false;
  // p distinct confidential values per class is exactly distinct
  // p-diversity.
  return IsLDiverse(data, p, confidential_offset);
}

Result<size_t> MaxSensitiveP(const Dataset& data,
                             size_t confidential_offset) {
  TCM_ASSIGN_OR_RETURN(LDiversityReport report,
                       EvaluateLDiversity(data, confidential_offset));
  return report.min_distinct_values;
}

}  // namespace tcm
