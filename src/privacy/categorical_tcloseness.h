#ifndef TCM_PRIVACY_CATEGORICAL_TCLOSENESS_H_
#define TCM_PRIVACY_CATEGORICAL_TCLOSENESS_H_

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

// t-Closeness verification for categorical confidential attributes — the
// checking side of the paper's research-direction item (i). The distance
// depends on the attribute type:
//  * ordinal categories: ordered EMD over the category bins (the paper's
//    EMD with rank ground distance, discretized to categories);
//  * nominal categories: total variation distance (EMD with unit ground
//    distance between distinct categories).
struct CategoricalTClosenessReport {
  size_t num_equivalence_classes = 0;
  double max_distance = 0.0;
  double mean_distance = 0.0;
};

// The confidential attribute selected by `confidential_offset` must be
// ordinal; InvalidArgument otherwise.
Result<CategoricalTClosenessReport> EvaluateOrdinalTCloseness(
    const Dataset& data, size_t confidential_offset = 0);

// The confidential attribute must be nominal; InvalidArgument otherwise.
Result<CategoricalTClosenessReport> EvaluateNominalTCloseness(
    const Dataset& data, size_t confidential_offset = 0);

// Threshold forms.
Result<bool> IsOrdinalTClose(const Dataset& data, double t,
                             size_t confidential_offset = 0);
Result<bool> IsNominalTClose(const Dataset& data, double t,
                             size_t confidential_offset = 0);

}  // namespace tcm

#endif  // TCM_PRIVACY_CATEGORICAL_TCLOSENESS_H_
