#ifndef TCM_PRIVACY_KANONYMITY_H_
#define TCM_PRIVACY_KANONYMITY_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

struct KAnonymityReport {
  size_t num_equivalence_classes = 0;
  size_t min_class_size = 0;   // the k actually achieved
  size_t max_class_size = 0;
  double average_class_size = 0.0;
};

// Measures the k-anonymity of a release (Definition 1 of the paper):
// the size of the smallest equivalence class.
Result<KAnonymityReport> EvaluateKAnonymity(const Dataset& data);

// Same measurement over precomputed equivalence classes, for callers
// that already grouped the release (e.g. the verify stage, which shares
// one EquivalenceClasses pass between the k and t checks).
KAnonymityReport EvaluateKAnonymity(
    const std::vector<std::vector<size_t>>& classes);

// True iff every equivalence class has at least k records.
Result<bool> IsKAnonymous(const Dataset& data, size_t k);
bool IsKAnonymous(const std::vector<std::vector<size_t>>& classes, size_t k);

}  // namespace tcm

#endif  // TCM_PRIVACY_KANONYMITY_H_
